// Package rfd_test benchmarks regenerate every table and figure of "Timer
// Interaction in Route Flap Damping" (ICDCS 2005) at paper scale and report
// the headline quantities as custom benchmark metrics:
//
//	go test -bench=. -benchmem
//
// Metric conventions: conv_s = convergence time in virtual seconds,
// msgs = update messages delivered, damped = peak suppressed (router, peer)
// pairs. Wall-clock ns/op measures the simulator itself.
package rfd_test

import (
	"testing"
	"time"

	"rfd/analytic"
	"rfd/bgp"
	"rfd/damping"
	"rfd/experiment"
	"rfd/faults"
	"rfd/topology"
)

// paperOptions are the paper-scale settings (10×10 mesh, 100/208-node
// Internet-derived graphs, pulses 0..10).
func paperOptions() experiment.Options { return experiment.DefaultOptions() }

// meshScenario builds the 100-node mesh scenario with the given config.
func meshScenario(b *testing.B, cfg bgp.Config) experiment.Scenario {
	b.Helper()
	g, err := topology.Torus(10, 10)
	if err != nil {
		b.Fatal(err)
	}
	return experiment.Scenario{Graph: g, ISP: 0, Config: cfg}
}

func ciscoConfig() bgp.Config {
	cfg := bgp.DefaultConfig()
	params := damping.Cisco()
	cfg.Damping = &params
	return cfg
}

// BenchmarkTable1Presets regenerates Table 1 (vendor default parameters).
func BenchmarkTable1Presets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.Table1()
		if len(rows) != 7 {
			b.Fatalf("Table 1 has %d rows", len(rows))
		}
	}
}

// BenchmarkFig3PenaltyTrace regenerates the Figure 3 penalty example.
func BenchmarkFig3PenaltyTrace(b *testing.B) {
	var pts int
	for i := 0; i < b.N; i++ {
		data, err := experiment.Fig3(paperOptions())
		if err != nil {
			b.Fatal(err)
		}
		pts = len(data.Trace)
	}
	b.ReportMetric(float64(pts), "trace_points")
}

// BenchmarkFig7SecondaryCharging regenerates Figure 7: the penalty trace at
// a router 7 hops from a single-pulse origin, showing secondary charging.
func BenchmarkFig7SecondaryCharging(b *testing.B) {
	var data *experiment.Fig7Data
	for i := 0; i < b.N; i++ {
		var err error
		data, err = experiment.Fig7(paperOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(data.Result.ConvergenceTime.Seconds(), "conv_s")
	b.ReportMetric(float64(data.Recharges), "recharges")
}

// benchSweep runs one scenario/pulse-count pair and reports its metrics.
func benchSweep(b *testing.B, sc experiment.Scenario, pulses int) {
	b.Helper()
	sc.Pulses = pulses
	var res *experiment.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ConvergenceTime.Seconds(), "conv_s")
	b.ReportMetric(float64(res.MessageCount), "msgs")
	b.ReportMetric(float64(res.MaxDamped), "damped")
}

// BenchmarkFig8ConvergenceTime regenerates the Figure 8 curves point by
// point: convergence time vs. pulses for no damping, full damping (mesh and
// Internet-derived), with the calculation reported alongside.
func BenchmarkFig8ConvergenceTime(b *testing.B) {
	o := paperOptions()
	inet, err := topology.InternetDerived(topology.DefaultInternetConfig(o.InternetNodes, o.Seed))
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1, 3, 5, 10} {
		n := n
		b.Run(benchName("no-damping-mesh", n), func(b *testing.B) {
			benchSweep(b, meshScenario(b, bgp.DefaultConfig()), n)
		})
		b.Run(benchName("full-damping-mesh", n), func(b *testing.B) {
			benchSweep(b, meshScenario(b, ciscoConfig()), n)
		})
		b.Run(benchName("full-damping-internet", n), func(b *testing.B) {
			benchSweep(b, experiment.Scenario{
				Graph: inet, ISP: topology.NodeID(o.InternetNodes / 2), Config: ciscoConfig(),
			}, n)
		})
		b.Run(benchName("calculation", n), func(b *testing.B) {
			var pred analytic.Prediction
			for i := 0; i < b.N; i++ {
				var err error
				pred, err = analytic.PredictPulses(damping.Cisco(), n, o.FlapInterval, 2*time.Minute)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pred.Convergence.Seconds(), "conv_s")
		})
	}
}

// BenchmarkFig9MessageCount regenerates the Figure 9 message-count points
// (same runs as Fig 8; reported separately to mirror the paper's figures).
func BenchmarkFig9MessageCount(b *testing.B) {
	for _, n := range []int{1, 5, 10} {
		n := n
		b.Run(benchName("no-damping-mesh", n), func(b *testing.B) {
			benchSweep(b, meshScenario(b, bgp.DefaultConfig()), n)
		})
		b.Run(benchName("full-damping-mesh", n), func(b *testing.B) {
			benchSweep(b, meshScenario(b, ciscoConfig()), n)
		})
	}
}

// BenchmarkFig10UpdateSeries regenerates the Figure 10 runs (n = 1, 3, 5)
// with their update series and damped-link counts.
func BenchmarkFig10UpdateSeries(b *testing.B) {
	for _, n := range []int{1, 3, 5} {
		n := n
		b.Run(benchName("n", n), func(b *testing.B) {
			var res *experiment.Result
			sc := meshScenario(b, ciscoConfig())
			sc.Pulses = n
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiment.Run(sc)
				if err != nil {
					b.Fatal(err)
				}
			}
			bins := res.Updates.Bins(0, res.EndTime, 5*time.Second)
			b.ReportMetric(res.ConvergenceTime.Seconds(), "conv_s")
			b.ReportMetric(float64(len(bins)), "bins_5s")
			b.ReportMetric(float64(res.MaxDamped), "damped")
			b.ReportMetric(float64(res.NoisyReuses), "noisy_reuses")
		})
	}
}

// BenchmarkFig13RCNConvergence regenerates the Figure 13 RCN curve.
func BenchmarkFig13RCNConvergence(b *testing.B) {
	cfg := ciscoConfig()
	cfg.EnableRCN = true
	for _, n := range []int{1, 3, 5, 10} {
		n := n
		b.Run(benchName("damping-rcn-mesh", n), func(b *testing.B) {
			benchSweep(b, meshScenario(b, cfg), n)
		})
	}
}

// BenchmarkFig14RCNMessageCount regenerates the Figure 14 RCN message
// counts.
func BenchmarkFig14RCNMessageCount(b *testing.B) {
	cfg := ciscoConfig()
	cfg.EnableRCN = true
	for _, n := range []int{1, 5, 10} {
		n := n
		b.Run(benchName("damping-rcn-mesh", n), func(b *testing.B) {
			benchSweep(b, meshScenario(b, cfg), n)
		})
	}
}

// BenchmarkFig15PolicyImpact regenerates the Figure 15 policy comparison on
// the 208-node Internet-derived topology.
func BenchmarkFig15PolicyImpact(b *testing.B) {
	o := paperOptions()
	g, err := topology.InternetDerived(topology.DefaultInternetConfig(o.PolicyNodes, o.Seed))
	if err != nil {
		b.Fatal(err)
	}
	isp := topology.NodeID(o.PolicyNodes / 2)
	for _, n := range []int{1, 3, 5} {
		n := n
		b.Run(benchName("with-policy", n), func(b *testing.B) {
			cfg := ciscoConfig()
			cfg.Policy = bgp.NoValley
			benchSweep(b, experiment.Scenario{Graph: g, ISP: isp, Config: cfg}, n)
		})
		b.Run(benchName("no-policy", n), func(b *testing.B) {
			benchSweep(b, experiment.Scenario{Graph: g, ISP: isp, Config: ciscoConfig()}, n)
		})
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ------------

// BenchmarkAblationMRAI varies the MRAI: it controls how much path
// exploration a flap causes, and with it the degree of false suppression.
func BenchmarkAblationMRAI(b *testing.B) {
	for _, mrai := range []time.Duration{0, 15 * time.Second, 30 * time.Second} {
		mrai := mrai
		b.Run(mrai.String(), func(b *testing.B) {
			cfg := ciscoConfig()
			cfg.MRAI = mrai
			benchSweep(b, meshScenario(b, cfg), 1)
		})
	}
}

// BenchmarkAblationVendorParams contrasts Cisco and Juniper damping
// defaults: Juniper's announcement penalty reaches suppression sooner.
func BenchmarkAblationVendorParams(b *testing.B) {
	for _, v := range []struct {
		name   string
		params damping.Params
	}{
		{"cisco", damping.Cisco()},
		{"juniper", damping.Juniper()},
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			cfg := bgp.DefaultConfig()
			params := v.params
			cfg.Damping = &params
			benchSweep(b, meshScenario(b, cfg), 2)
		})
	}
}

// BenchmarkAblationTopology varies alternate-path richness: more alternate
// paths mean more exploration and more false suppression.
func BenchmarkAblationTopology(b *testing.B) {
	ring, err := topology.Ring(100)
	if err != nil {
		b.Fatal(err)
	}
	inet, err := topology.InternetDerived(topology.DefaultInternetConfig(100, 1))
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		sc   experiment.Scenario
	}{
		{"torus-10x10", meshScenario(b, ciscoConfig())},
		{"ring-100", experiment.Scenario{Graph: ring, ISP: 0, Config: ciscoConfig()}},
		{"internet-100", experiment.Scenario{Graph: inet, ISP: 50, Config: ciscoConfig()}},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			benchSweep(b, tc.sc, 1)
		})
	}
}

// BenchmarkAblationDeployment sweeps partial damping deployment (the
// companion tech report's scenario): false suppression scales with the
// deployed fraction.
func BenchmarkAblationDeployment(b *testing.B) {
	for _, pct := range []int{25, 50, 100} {
		pct := pct
		b.Run(benchName("pct", pct), func(b *testing.B) {
			var rows []experiment.DeploymentRow
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = experiment.PartialDeployment(paperOptions(), []int{pct}, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rows[0].Conv.Seconds(), "conv_s")
			b.ReportMetric(float64(rows[0].MaxDamped), "damped")
		})
	}
}

// BenchmarkAblationPenaltyFilters contrasts classic, selective (Mao et al.)
// and RCN damping at one pulse.
func BenchmarkAblationPenaltyFilters(b *testing.B) {
	var rows []experiment.FilterRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.FilterComparison(paperOptions(), []int{1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Classic.Seconds(), "classic_s")
	b.ReportMetric(rows[0].Selective.Seconds(), "selective_s")
	b.ReportMetric(rows[0].RCN.Seconds(), "rcn_s")
}

// BenchmarkLabovitzEvents measures the plain-BGP convergence baseline the
// paper builds on: Tup / Tdown / Tlong / Tshort.
func BenchmarkLabovitzEvents(b *testing.B) {
	var rows []experiment.EventMeasurement
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.ConvergenceEvents(paperOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Convergence.Seconds(), r.Event+"_s")
	}
}

// BenchmarkFaultySweep measures the fault-injection path: a 5×5 torus under
// 1 % uniform message loss with three session resets during the flap phase,
// drained by the convergence watchdog. drops counts impaired and severed
// messages; checks the watchdog's quiescent-instant consistency checks.
func BenchmarkFaultySweep(b *testing.B) {
	g, err := topology.Torus(5, 5)
	if err != nil {
		b.Fatal(err)
	}
	var res *experiment.Result
	for i := 0; i < b.N; i++ {
		imp := faults.NewImpairments(1)
		if err := imp.SetDefault(faults.Profile{Loss: 0.01}); err != nil {
			b.Fatal(err)
		}
		sc := experiment.Scenario{
			Graph:  g,
			ISP:    0,
			Config: ciscoConfig(),
			Pulses: 2,
			Impair: imp,
			Faults: faults.NewPlan(
				faults.ResetSession(30*time.Second, 0, 1),
				faults.ResetSession(90*time.Second, 5, 6),
				faults.ResetSession(150*time.Second, 12, 13),
			),
			Watchdog: &faults.WatchdogConfig{},
		}
		res, err = experiment.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ConvergenceTime.Seconds(), "conv_s")
	b.ReportMetric(float64(res.MessageCount), "msgs")
	b.ReportMetric(float64(res.MaxDamped), "damped")
	b.ReportMetric(float64(res.Dropped), "drops")
	b.ReportMetric(float64(res.FaultReport.Checks), "checks")
}

// BenchmarkEngineEventThroughput measures raw simulator speed: events/s on
// an undamped single-pulse mesh run.
func BenchmarkEngineEventThroughput(b *testing.B) {
	sc := meshScenario(b, bgp.DefaultConfig())
	sc.Pulses = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, n int) string {
	return prefix + "/pulses=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
