// Package check is the opt-in runtime invariant checker for the bgp engine,
// plus a differential damping oracle that replays every (router, peer, prefix)
// update stream through an independent damping implementation.
//
// A Checker attaches to a live Network and observes every kernel event through
// the after-event hook: once the event's callback has returned — and before
// the next event fires — it sweeps the network and verifies, for every router
// that is up:
//
//   - Local-RIB correctness: the installed route is the preference-best of the
//     unsuppressed RIB-IN entries (policy class, then shortest path, then
//     lowest peer id), or the self-originated route for originated prefixes.
//   - RIB-OUT consistency: what each peer has been told matches the export
//     policy applied to the Local-RIB, modulo an announcement legitimately
//     held back by an active MRAI timer; sessions that are down carry no
//     advertisement state.
//   - Damping sanity: every penalty lies in [0, Params.MaxPenalty()], and a
//     route is suppressed if and only if its reuse timer is pending.
//   - AS-path loop freedom of every selected route.
//   - Virtual clock monotonicity.
//   - Message conservation per directed link: sent equals delivered plus
//     dropped (impairment or severed session) plus in flight, cross-checked
//     against the engine's own delivery counters and queue.
//
// Independently, the differential oracle (see oracle.go) feeds every observed
// update through shadow damping state and, at Finish, through the standalone
// damping.Replay and — for the ispAS stream — the analytic model, failing
// loudly on any divergence between the engine and those reference
// implementations.
//
// Violations are collected as readable diagnoses (virtual time, event name,
// router, invariant, expected vs. actual), never panics; the run continues so
// one report can show several independent problems.
package check

import (
	"fmt"
	"strings"
	"time"

	"rfd/bgp"
	"rfd/damping"
	"rfd/rcn"
	"rfd/sim"
)

// Options configures a Checker.
type Options struct {
	// ISP, Origin and Prefix identify the stream the analytic single-router
	// model is checked against: the updates Origin sends ISP for Prefix. The
	// analytic cross-check is skipped when Prefix is empty.
	ISP    bgp.RouterID
	Origin bgp.RouterID
	Prefix bgp.Prefix

	// MaxViolations bounds how many violations are kept with full diagnoses
	// (the total count keeps counting past it). Default 16.
	MaxViolations int

	// Epsilon is the relative tolerance for penalty comparisons between the
	// engine and the oracle. Default 1e-9 — the shadow performs bit-identical
	// float operations, so only accumulated rounding in independent decay
	// paths needs headroom.
	//
	// When the network runs the timer-wheel damping engine
	// (bgp.Config.DampingEngine == damping.EngineWheel), the oracle
	// automatically switches to wheel-vs-exact mode: instead of demanding
	// equality within Epsilon, it checks the engine's quantized penalty
	// against the documented two-sided bound exact/e^(lambda*DeltaT) <=
	// wheel <= exact*e^(lambda*DeltaT) (update instants round down to decay
	// ticks, so the quantized interval between a charge and a query misses
	// the exact one by less than one tick either way), tolerates
	// suppression onsets that diverge — in either direction — only while
	// the shadow sits within one decay tick of the cutoff threshold, and
	// accepts reuse lifted anywhere in [exact - DeltaT, exact + DeltaT +
	// DeltaTReuse]. Epsilon still supplies the floating-point slack on
	// every band edge.
	Epsilon float64

	// NoOracle disables the differential damping oracle, leaving only the
	// structural invariants. Useful when attaching mid-run to a network whose
	// damping state is already nonzero.
	NoOracle bool
}

// Violation is one invariant failure: where it happened, which invariant, and
// an expected-vs-actual diagnosis.
type Violation struct {
	// At is the virtual time of the event the violation was detected after.
	At time.Duration
	// Event is the kernel event name ("(attach)" for the attach-time sweep,
	// "(external)" for mutations made between kernel events by direct API
	// calls, "(finish)" for end-of-run cross-checks).
	Event string
	// Router is the router the invariant belongs to, or -1 for network-level
	// invariants (conservation, clock).
	Router bgp.RouterID
	// Invariant names the violated invariant ("local-rib", "rib-out",
	// "penalty-bounds", "reuse-timer", "loop-freedom", "conservation",
	// "clock", "damping-oracle", "replay-oracle", "analytic-oracle",
	// "oracle-stream").
	Invariant string
	// Detail is the human-readable diagnosis.
	Detail string
}

// String renders the violation on one line.
func (v Violation) String() string {
	who := "network"
	if v.Router >= 0 {
		who = fmt.Sprintf("router %d", v.Router)
	}
	return fmt.Sprintf("t=%v event=%s %s [%s]: %s", v.At, v.Event, who, v.Invariant, v.Detail)
}

// Report summarizes a checked run.
type Report struct {
	// Events is how many kernel events the checker swept after.
	Events uint64
	// Updates is how many RIB-IN updates the oracle observed.
	Updates uint64
	// Streams is how many (router, peer, prefix) update streams were shadowed.
	Streams int
	// Total counts every violation detected; Violations keeps the first
	// MaxViolations of them with full diagnoses.
	Total      int
	Violations []Violation
}

// Ok reports whether the run was violation-free.
func (r *Report) Ok() bool { return r.Total == 0 }

// Err returns nil for a clean run, or an error carrying every recorded
// diagnosis.
func (r *Report) Err() error {
	if r.Ok() {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d invariant violation(s) in %d events", r.Total, r.Events)
	for _, v := range r.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	if r.Total > len(r.Violations) {
		fmt.Fprintf(&b, "\n  ... and %d more", r.Total-len(r.Violations))
	}
	return fmt.Errorf("%s", b.String())
}

// String summarizes the report on one line.
func (r *Report) String() string {
	return fmt.Sprintf("check: %d events, %d updates, %d streams, %d violation(s)",
		r.Events, r.Updates, r.Streams, r.Total)
}

// Checker observes one Network. Create with Attach; call Finish at the end of
// the run for the replay/analytic cross-checks, then Detach to restore the
// hooks it chained. Checker is not safe for concurrent use (neither is the
// kernel it watches).
type Checker struct {
	n    *bgp.Network
	k    *sim.Kernel
	opts Options
	cfg  bgp.Config
	// wheel marks wheel-vs-exact oracle mode (the network runs the
	// timer-wheel damping engine); wheelCfg is its quantization geometry.
	wheel    bool
	wheelCfg damping.WheelConfig

	prevTrace sim.TraceFunc
	prevAfter sim.TraceFunc
	prevDebug bgp.DebugHooks
	detached  bool
	finished  bool

	curEvent string
	lastAt   time.Duration
	events   uint64
	updates  uint64

	// Differential oracle state (oracle.go).
	streams map[streamKey]*stream
	hists   map[histKey]*rcn.History

	// Conservation tallies.
	links         map[linkKey]*linkTally
	inflight      int
	sent          uint64
	delivered     uint64
	dropped       uint64
	baseDelivered uint64
	baseDropped   uint64

	total      int
	violations []Violation

	// Per-router sweep scratch, reused across events.
	cand    map[bgp.Prefix]candidate
	locals  map[bgp.Prefix]bgp.LocalView
	pathBuf bgp.Path
}

// Attach hooks a Checker into the network and validates the current state
// once. The checker chains the kernel's trace and after-event observers and
// the network's debug hooks, preserving any previously installed ones; attach
// and detach checkers (and other observers like the fault watchdog) in LIFO
// order.
//
// The differential oracle assumes damping state is clean at attach time: a
// RIB-IN entry with nonzero penalty or active suppression has unobservable
// history, so its stream is marked desynchronized and exempted from oracle
// comparison (structural invariants still apply). Attach right after
// Network.ResetDamping — as experiment.Scenario does — for full coverage.
func Attach(n *bgp.Network, opts Options) (*Checker, error) {
	if n == nil {
		return nil, fmt.Errorf("check: nil network")
	}
	if opts.MaxViolations <= 0 {
		opts.MaxViolations = 16
	}
	if opts.Epsilon <= 0 {
		opts.Epsilon = 1e-9
	}
	c := &Checker{
		n:        n,
		k:        n.Kernel(),
		opts:     opts,
		cfg:      n.Config(),
		curEvent: "(attach)",
		streams:  make(map[streamKey]*stream),
		hists:    make(map[histKey]*rcn.History),
		links:    make(map[linkKey]*linkTally),
		cand:     make(map[bgp.Prefix]candidate),
		locals:   make(map[bgp.Prefix]bgp.LocalView),
	}
	if c.cfg.DampingEngine == damping.EngineWheel {
		c.wheel = true
		c.wheelCfg = c.cfg.WheelConfig.WithDefaults()
	}
	c.lastAt = c.k.Now()
	c.baseDelivered = n.Delivered()
	c.baseDropped = n.Dropped()
	c.seedStreams()

	c.prevTrace = c.k.Trace()
	c.k.SetTrace(c.onTrace)
	c.prevAfter = c.k.AfterEvent()
	c.k.SetAfterEvent(c.onAfterEvent)
	c.prevDebug = n.DebugHooks()
	n.SetDebugHooks(bgp.DebugHooks{
		OnSend:    c.onSend,
		OnDeliver: c.onDeliver,
		OnDrop:    c.onDrop,
		OnUpdate:  c.onUpdate,
	})

	c.sweep(c.lastAt)
	c.curEvent = "(external)"
	return c, nil
}

// Detach restores the observers the checker displaced. Safe to call more than
// once.
func (c *Checker) Detach() {
	if c.detached {
		return
	}
	c.detached = true
	c.k.SetTrace(c.prevTrace)
	c.k.SetAfterEvent(c.prevAfter)
	c.n.SetDebugHooks(c.prevDebug)
}

// Report returns the current report. It can be consulted mid-run; Finish adds
// the end-of-run cross-checks.
func (c *Checker) Report() *Report {
	return &Report{
		Events:     c.events,
		Updates:    c.updates,
		Streams:    len(c.streams),
		Total:      c.total,
		Violations: append([]Violation(nil), c.violations...),
	}
}

// Finish runs the end-of-run cross-checks — a final sweep, the standalone
// damping.Replay of every pure stream, and the analytic single-router model
// for the configured ispAS stream — and returns the final report. Call it
// once, after the run has drained; use Report for mid-run snapshots.
func (c *Checker) Finish() *Report {
	if !c.finished {
		c.finished = true
		c.curEvent = "(finish)"
		c.sweep(c.k.Now())
		if !c.opts.NoOracle {
			c.finishOracle(c.k.Now())
		}
	}
	return c.Report()
}

// record adds one violation.
func (c *Checker) record(at time.Duration, router bgp.RouterID, invariant, detail string) {
	c.total++
	if len(c.violations) < c.opts.MaxViolations {
		c.violations = append(c.violations, Violation{
			At:        at,
			Event:     c.curEvent,
			Router:    router,
			Invariant: invariant,
			Detail:    detail,
		})
	}
}

// onTrace labels in-flight diagnoses with the event about to fire.
func (c *Checker) onTrace(at time.Duration, name string) {
	c.curEvent = name
	if c.prevTrace != nil {
		c.prevTrace(at, name)
	}
}

// onAfterEvent is the per-event sweep: the callback has returned, so the
// network is in whatever state the event left it, and every invariant must
// hold.
func (c *Checker) onAfterEvent(at time.Duration, name string) {
	c.events++
	c.curEvent = name
	if at < c.lastAt {
		c.record(at, -1, "clock", fmt.Sprintf("virtual clock went backwards: %v after %v", at, c.lastAt))
	}
	c.lastAt = at
	c.sweep(at)
	// Anything mutated before the next event fires is a direct API call.
	c.curEvent = "(external)"
	if c.prevAfter != nil {
		c.prevAfter(at, name)
	}
}
