package check

import (
	"strings"
	"testing"
	"time"

	"rfd/bgp"
	"rfd/damping"
	"rfd/sim"
	"rfd/topology"
)

const testPrefix = bgp.Prefix("origin/8")

// buildDamped assembles the paper's standard harness: a 3x3 torus with an
// attached origin, Cisco damping everywhere, converged and with damping and
// counters reset (the warm-up the experiment package performs before it
// attaches a checker).
func buildDamped(t *testing.T, mutate func(*bgp.Config)) (*sim.Kernel, *bgp.Network, bgp.RouterID, bgp.RouterID) {
	t.Helper()
	g, err := topology.Torus(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	isp := topology.NodeID(0)
	origin := g.AddNode()
	if err := g.AddEdge(origin, isp); err != nil {
		t.Fatal(err)
	}
	cfg := bgp.DefaultConfig()
	params := damping.Cisco()
	cfg.Damping = &params
	if mutate != nil {
		mutate(&cfg)
	}
	k := sim.NewKernel(sim.WithSeed(cfg.Seed))
	n, err := bgp.NewNetwork(k, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Router(origin).Originate(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	n.ResetDamping()
	n.ResetCounters()
	return k, n, origin, isp
}

// pulse is one (withdrawal, announcement) flap at the paper's 60 s interval.
func pulse(t *testing.T, k *sim.Kernel, n *bgp.Network, origin bgp.RouterID) {
	t.Helper()
	n.Router(origin).StopOriginating(testPrefix)
	if err := k.RunUntil(k.Now() + 60*time.Second); err != nil {
		t.Fatal(err)
	}
	n.Router(origin).Originate(testPrefix)
	if err := k.RunUntil(k.Now() + 60*time.Second); err != nil {
		t.Fatal(err)
	}
}

func attach(t *testing.T, n *bgp.Network, origin, isp bgp.RouterID) *Checker {
	t.Helper()
	chk, err := Attach(n, Options{ISP: isp, Origin: origin, Prefix: testPrefix})
	if err != nil {
		t.Fatal(err)
	}
	return chk
}

// TestCleanRunPassesChecked drives the paper's three-pulse suppression
// scenario under the checker and expects zero violations — including the
// replay and analytic cross-checks over a stream that really did suppress.
func TestCleanRunPassesChecked(t *testing.T) {
	k, n, origin, isp := buildDamped(t, nil)
	chk := attach(t, n, origin, isp)
	defer chk.Detach()

	for i := 0; i < 3; i++ {
		pulse(t, k, n, origin)
	}
	if !n.Router(isp).Suppressed(origin, testPrefix) {
		t.Fatal("scenario did not suppress; checker run is not exercising damping")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	rep := chk.Finish()
	if err := rep.Err(); err != nil {
		t.Fatalf("clean run reported violations:\n%v", err)
	}
	if rep.Events == 0 || rep.Updates == 0 || rep.Streams == 0 {
		t.Fatalf("checker observed nothing: %v", rep)
	}
}

// TestCleanRunPassesCheckedRCN and ...Selective exercise the oracle's
// replication of the two penalty-filter variants.
func TestCleanRunPassesCheckedRCN(t *testing.T) {
	k, n, origin, isp := buildDamped(t, func(c *bgp.Config) { c.EnableRCN = true })
	chk := attach(t, n, origin, isp)
	defer chk.Detach()
	for i := 0; i < 3; i++ {
		pulse(t, k, n, origin)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := chk.Finish().Err(); err != nil {
		t.Fatalf("clean RCN run reported violations:\n%v", err)
	}
}

func TestCleanRunPassesCheckedSelective(t *testing.T) {
	k, n, origin, isp := buildDamped(t, func(c *bgp.Config) { c.SelectiveDamping = true })
	chk := attach(t, n, origin, isp)
	defer chk.Detach()
	for i := 0; i < 3; i++ {
		pulse(t, k, n, origin)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := chk.Finish().Err(); err != nil {
		t.Fatalf("clean selective run reported violations:\n%v", err)
	}
}

// TestSeededChargeDetected mutates the engine's live damping state behind its
// back — an extra withdrawal charge the protocol never saw — and requires the
// differential oracle to flag the divergence with a diagnosis naming the
// event, the router and the invariant.
func TestSeededChargeDetected(t *testing.T) {
	k, n, origin, isp := buildDamped(t, nil)
	chk := attach(t, n, origin, isp)
	defer chk.Detach()

	pulse(t, k, n, origin)

	st := n.Router(isp).DebugDampingState(origin, testPrefix)
	if st == nil {
		t.Fatal("no damping state at isp after a pulse")
	}
	st.Update(k.Now(), damping.KindWithdrawal, true) // the seeded fault

	pulse(t, k, n, origin)
	rep := chk.Finish()
	v, ok := findViolation(rep, isp, "damping-oracle")
	if !ok {
		t.Fatalf("seeded charge not detected; report: %v\n%v", rep, rep.Err())
	}
	if v.Event == "" || v.Event == "(external)" {
		t.Fatalf("violation does not name a kernel event: %q", v.Event)
	}
	if !strings.Contains(v.Detail, "penalty") {
		t.Fatalf("diagnosis does not describe the penalty divergence: %q", v.Detail)
	}
	if got := v.String(); !strings.Contains(got, "router 0") || !strings.Contains(got, "damping-oracle") {
		t.Fatalf("rendered violation lacks router or invariant: %q", got)
	}
}

// TestSeededSuppressionSkipDetected clears a suppressed state behind the
// engine's back — the equivalent of a router forgetting it suppressed a route
// while its reuse timer is still pending — and requires both the structural
// reuse-timer invariant and the oracle to fire.
func TestSeededSuppressionSkipDetected(t *testing.T) {
	k, n, origin, isp := buildDamped(t, nil)
	chk := attach(t, n, origin, isp)
	defer chk.Detach()

	for i := 0; i < 3; i++ {
		pulse(t, k, n, origin)
	}
	st := n.Router(isp).DebugDampingState(origin, testPrefix)
	if st == nil || !st.Suppressed() {
		t.Fatal("isp not suppressed after three pulses")
	}
	st.Reset() // the seeded fault: suppression vanishes, the reuse timer does not

	// Any subsequent activity makes the next sweep see the inconsistency.
	n.Router(origin).StopOriginating(testPrefix)
	if err := k.RunUntil(k.Now() + time.Second); err != nil {
		t.Fatal(err)
	}
	rep := chk.Report()
	if _, ok := findViolation(rep, isp, "reuse-timer"); !ok {
		t.Fatalf("reuse-timer inconsistency not detected; report: %v\n%v", rep, rep.Err())
	}
	if _, ok := findViolation(rep, isp, "damping-oracle"); !ok {
		t.Fatalf("oracle did not flag the vanished suppression; report: %v\n%v", rep, rep.Err())
	}
}

// TestDetachRestoresObservers verifies LIFO-safe chaining: whatever trace,
// after-event and debug hooks were installed before Attach are back after
// Detach, and chained ones keep firing while attached.
func TestDetachRestoresObservers(t *testing.T) {
	k, n, origin, isp := buildDamped(t, nil)

	traced := 0
	k.SetTrace(func(time.Duration, string) { traced++ })
	delivered := 0
	n.SetDebugHooks(bgp.DebugHooks{OnDeliver: func(time.Duration, bgp.Message) { delivered++ }})

	chk := attach(t, n, origin, isp)
	pulse(t, k, n, origin)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if traced == 0 {
		t.Fatal("chained trace observer stopped firing under the checker")
	}
	if delivered == 0 {
		t.Fatal("chained debug hook stopped firing under the checker")
	}
	if err := chk.Finish().Err(); err != nil {
		t.Fatal(err)
	}
	chk.Detach()
	chk.Detach() // idempotent

	if k.Trace() == nil {
		t.Fatal("Detach did not restore the previous trace observer")
	}
	if k.AfterEvent() != nil {
		t.Fatal("Detach did not restore the previous after-event observer")
	}
	if h := n.DebugHooks(); h.OnDeliver == nil || h.OnUpdate != nil {
		t.Fatal("Detach did not restore the previous debug hooks")
	}
}

func findViolation(rep *Report, router bgp.RouterID, invariant string) (Violation, bool) {
	for _, v := range rep.Violations {
		if v.Router == router && v.Invariant == invariant {
			return v, true
		}
	}
	return Violation{}, false
}
