package check

import (
	"fmt"
	"time"

	"rfd/bgp"
	"rfd/sim"
	"rfd/topology"
)

// linkKey identifies one directed link for conservation accounting.
type linkKey struct {
	From, To bgp.RouterID
}

// linkTally is the message ledger of one directed link. By construction of
// the hooks sent == delivered + dropped + inflight at every instant; the
// sweep re-asserts the identity and cross-checks the totals against the
// engine's own counters and pending-delivery queue, so a message the engine
// loses (or conjures) without the matching hook shows up immediately.
type linkTally struct {
	sent      uint64
	delivered uint64
	dropped   uint64
	inflight  int
}

func (c *Checker) tally(from, to bgp.RouterID) *linkTally {
	k := linkKey{From: from, To: to}
	t := c.links[k]
	if t == nil {
		t = &linkTally{}
		c.links[k] = t
	}
	return t
}

func (c *Checker) onSend(at time.Duration, msg bgp.Message) {
	t := c.tally(msg.From, msg.To)
	t.sent++
	t.inflight++
	c.sent++
	c.inflight++
	if h := c.prevDebug.OnSend; h != nil {
		h(at, msg)
	}
}

func (c *Checker) onDeliver(at time.Duration, msg bgp.Message) {
	t := c.tally(msg.From, msg.To)
	t.delivered++
	t.inflight--
	c.delivered++
	c.inflight--
	if h := c.prevDebug.OnDeliver; h != nil {
		h(at, msg)
	}
}

func (c *Checker) onDrop(at time.Duration, msg bgp.Message, reason bgp.DropReason) {
	t := c.tally(msg.From, msg.To)
	t.dropped++
	t.inflight--
	c.dropped++
	c.inflight--
	if h := c.prevDebug.OnDrop; h != nil {
		h(at, msg, reason)
	}
}

// sweep verifies every invariant against the network's current state.
func (c *Checker) sweep(at time.Duration) {
	c.checkConservation(at)
	for id := 0; id < c.n.NumRouters(); id++ {
		rid := bgp.RouterID(id)
		if !c.n.RouterUp(rid) {
			// A crashed router's protocol state is gone; drop its oracle
			// shadows so post-restart streams start fresh, like the engine.
			c.dropRouterShadows(rid)
			continue
		}
		c.sweepRouter(at, c.n.Router(rid))
	}
}

func (c *Checker) checkConservation(at time.Duration) {
	for k, t := range c.links {
		if t.sent != t.delivered+t.dropped+uint64(t.inflight) {
			c.record(at, -1, "conservation", fmt.Sprintf(
				"link %d->%d: sent %d != delivered %d + dropped %d + in-flight %d",
				k.From, k.To, t.sent, t.delivered, t.dropped, t.inflight))
		}
	}
	if c.inflight != c.n.PendingDeliveries() {
		c.record(at, -1, "conservation", fmt.Sprintf(
			"hooks saw %d messages in flight, engine has %d pending deliveries",
			c.inflight, c.n.PendingDeliveries()))
	}
	if got := c.n.Delivered() - c.baseDelivered; got != c.delivered {
		c.record(at, -1, "conservation", fmt.Sprintf(
			"hooks saw %d deliveries, engine counted %d", c.delivered, got))
	}
	if got := c.n.Dropped() - c.baseDropped; got != c.dropped {
		c.record(at, -1, "conservation", fmt.Sprintf(
			"hooks saw %d drops, engine counted %d", c.dropped, got))
	}
}

// candidate is the sweep's own run of the decision process: the best usable
// RIB-IN route seen so far for one prefix.
type candidate struct {
	class int
	peer  bgp.RouterID
	path  bgp.Path
}

func (c *Checker) sweepRouter(at time.Duration, r *bgp.Router) {
	rid := r.ID()
	clear(c.cand)
	clear(c.locals)

	maxPenalty := 0.0
	if params, ok := r.DampingParams(); ok {
		maxPenalty = params.MaxPenalty()
	}

	r.EachRIBIn(at, func(v bgp.RIBInView) {
		if v.HasDamping {
			if v.Penalty < 0 || v.Penalty > maxPenalty*(1+c.opts.Epsilon) {
				c.record(at, rid, "penalty-bounds", fmt.Sprintf(
					"peer %d prefix %s: penalty %.6g outside [0, %.6g]",
					v.Peer, v.Prefix, v.Penalty, maxPenalty))
			}
			if v.Suppressed && v.ReuseAt == sim.Never {
				c.record(at, rid, "reuse-timer", fmt.Sprintf(
					"peer %d prefix %s: route suppressed but no reuse timer pending",
					v.Peer, v.Prefix))
			}
			if !v.Suppressed && v.ReuseAt != sim.Never {
				c.record(at, rid, "reuse-timer", fmt.Sprintf(
					"peer %d prefix %s: reuse timer pending at %v on an unsuppressed route",
					v.Peer, v.Prefix, v.ReuseAt))
			}
		}
		if !c.opts.NoOracle {
			c.compareShadow(at, rid, v)
		}
		if v.Path != nil && !v.Suppressed {
			c.offerCandidate(r, v)
		}
	})

	r.EachLocal(func(lv bgp.LocalView) {
		c.locals[lv.Prefix] = lv
		c.checkLocal(at, r, lv)
		delete(c.cand, lv.Prefix)
	})
	for prefix, want := range c.cand {
		c.record(at, rid, "local-rib", fmt.Sprintf(
			"prefix %s: usable RIB-IN route via peer %d [%s] but no Local-RIB entry",
			prefix, want.peer, want.path))
	}

	r.EachRIBOut(func(v bgp.RIBOutView) {
		c.checkRIBOut(at, r, v)
	})
}

// prefClass mirrors the engine's policy ranking of the peer a route was
// learned from; larger is preferred.
func (c *Checker) prefClass(r *bgp.Router, peer bgp.RouterID) int {
	if c.cfg.Policy != bgp.NoValley {
		return 2
	}
	switch c.n.Graph().Relationship(r.ID(), peer) {
	case topology.RelCustomer:
		return 3
	case topology.RelProvider:
		return 1
	default:
		return 2
	}
}

// offerCandidate folds one usable RIB-IN route into the sweep's independent
// decision process (preference class, then shortest path, then lowest peer).
func (c *Checker) offerCandidate(r *bgp.Router, v bgp.RIBInView) {
	class := c.prefClass(r, v.Peer)
	cur, ok := c.cand[v.Prefix]
	better := false
	switch {
	case !ok:
		better = true
	case class != cur.class:
		better = class > cur.class
	case len(v.Path) != len(cur.path):
		better = len(v.Path) < len(cur.path)
	default:
		better = v.Peer < cur.peer
	}
	if better {
		c.cand[v.Prefix] = candidate{class: class, peer: v.Peer, path: v.Path}
	}
}

func (c *Checker) checkLocal(at time.Duration, r *bgp.Router, lv bgp.LocalView) {
	rid := r.ID()
	if lv.HasRoute && !lv.SelfOriginated {
		if lv.BestPath.Contains(rid) {
			c.record(at, rid, "loop-freedom", fmt.Sprintf(
				"prefix %s: selected path [%s] traverses the router itself",
				lv.Prefix, lv.BestPath))
		}
		if hop, dup := firstDuplicate(lv.BestPath); dup {
			c.record(at, rid, "loop-freedom", fmt.Sprintf(
				"prefix %s: selected path [%s] visits AS %d twice",
				lv.Prefix, lv.BestPath, hop))
		}
	}
	if r.Originates(lv.Prefix) {
		if !lv.SelfOriginated {
			c.record(at, rid, "local-rib", fmt.Sprintf(
				"prefix %s: originated locally but Local-RIB selects peer %d [%s]",
				lv.Prefix, lv.BestPeer, lv.BestPath))
		}
		return
	}
	if lv.SelfOriginated {
		c.record(at, rid, "local-rib", fmt.Sprintf(
			"prefix %s: Local-RIB claims self-origination of a prefix the router does not originate",
			lv.Prefix))
		return
	}
	want, ok := c.cand[lv.Prefix]
	switch {
	case !ok && lv.HasRoute:
		c.record(at, rid, "local-rib", fmt.Sprintf(
			"prefix %s: Local-RIB has peer %d [%s] but no usable RIB-IN entry exists",
			lv.Prefix, lv.BestPeer, lv.BestPath))
	case ok && !lv.HasRoute:
		c.record(at, rid, "local-rib", fmt.Sprintf(
			"prefix %s: Local-RIB empty but the decision process selects peer %d [%s]",
			lv.Prefix, want.peer, want.path))
	case ok && (lv.BestPeer != want.peer || !lv.BestPath.Equal(want.path)):
		c.record(at, rid, "local-rib", fmt.Sprintf(
			"prefix %s: Local-RIB has peer %d [%s], decision process selects peer %d [%s]",
			lv.Prefix, lv.BestPeer, lv.BestPath, want.peer, want.path))
	}
}

func (c *Checker) checkRIBOut(at time.Duration, r *bgp.Router, v bgp.RIBOutView) {
	rid := r.ID()
	if !c.n.SessionUp(rid, v.Peer) {
		if v.Advertised != nil || v.Pending {
			c.record(at, rid, "rib-out", fmt.Sprintf(
				"prefix %s to %d: advertisement state on a down session (advertised [%s], pending %t)",
				v.Prefix, v.Peer, v.Advertised, v.Pending))
		}
		if v.MRAIAt != sim.Never {
			c.record(at, rid, "rib-out", fmt.Sprintf(
				"prefix %s to %d: MRAI timer pending at %v on a down session",
				v.Prefix, v.Peer, v.MRAIAt))
		}
		return
	}
	desired := c.exportPath(r, c.locals[v.Prefix], v.Peer)
	if v.Pending {
		if v.MRAIAt == sim.Never {
			c.record(at, rid, "rib-out", fmt.Sprintf(
				"prefix %s to %d: announcement pending without an active MRAI timer",
				v.Prefix, v.Peer))
		}
		if !v.PendingPath.Equal(desired) {
			c.record(at, rid, "rib-out", fmt.Sprintf(
				"prefix %s to %d: pending announcement [%s] != export decision [%s]",
				v.Prefix, v.Peer, v.PendingPath, desired))
		}
		if desired.Equal(v.Advertised) {
			c.record(at, rid, "rib-out", fmt.Sprintf(
				"prefix %s to %d: announcement pending although [%s] is already advertised",
				v.Prefix, v.Peer, v.Advertised))
		}
		return
	}
	if !v.Advertised.Equal(desired) {
		c.record(at, rid, "rib-out", fmt.Sprintf(
			"prefix %s to %d: advertised [%s] != export decision [%s]",
			v.Prefix, v.Peer, v.Advertised, desired))
	}
}

// exportPath mirrors the engine's export policy: the Local-RIB route with the
// router prepended, nil when policy or loop filtering suppresses the export.
func (c *Checker) exportPath(r *bgp.Router, lv bgp.LocalView, q bgp.RouterID) bgp.Path {
	if !lv.HasRoute {
		return nil
	}
	if c.cfg.Policy == bgp.NoValley && !lv.SelfOriginated {
		g := c.n.Graph()
		if g.Relationship(r.ID(), lv.BestPeer) != topology.RelCustomer &&
			g.Relationship(r.ID(), q) != topology.RelCustomer {
			return nil
		}
	}
	adv := append(c.pathBuf[:0], r.ID())
	adv = append(adv, lv.BestPath...)
	c.pathBuf = adv
	if adv.Contains(q) {
		return nil
	}
	return adv
}

// firstDuplicate reports a hop that appears twice in the path. Paths are
// short (AS-path lengths), so the quadratic scan is fine.
func firstDuplicate(p bgp.Path) (bgp.RouterID, bool) {
	for i := 1; i < len(p); i++ {
		for j := 0; j < i; j++ {
			if p[i] == p[j] {
				return p[i], true
			}
		}
	}
	return 0, false
}
