package check

import (
	"fmt"
	"math"
	"sort"
	"time"

	"rfd/analytic"
	"rfd/bgp"
	"rfd/damping"
	"rfd/rcn"
)

// The differential oracle shadows every (router, peer, prefix) update stream
// with an independently-driven damping.State: each update the engine applies
// (observed via DebugHooks.OnUpdate, before the engine mutates anything) is
// classified, charge-filtered and fed into the shadow by the checker's own
// reimplementation of the engine's charging rules. The per-event sweep then
// compares engine and shadow; at Finish the recorded streams additionally run
// through the standalone damping.Replay, and the ispAS stream through the
// analytic single-router model. A bug in the engine's charging, decay, or
// reuse logic therefore has to fool three implementations at once to go
// unnoticed.

// streamKey identifies one update stream: what router hears from peer about
// prefix.
type streamKey struct {
	Router, Peer bgp.RouterID
	Prefix       bgp.Prefix
}

// histKey identifies one shadow RCN history (engine: per router per peer).
type histKey struct {
	Router, Peer bgp.RouterID
}

// stream is the oracle's shadow of one update stream.
type stream struct {
	// state is the shadow damping state; nil when the router has damping
	// disabled (the shadow then only tracks route presence and path).
	state *damping.State
	// desynced marks a stream exempt from oracle comparison: its damping
	// history is unobservable (nonzero at attach) or it already diverged
	// (one divergence is reported once, not once per subsequent event).
	desynced bool
	// pure reports that every update charged the penalty — no RCN or
	// selective-damping veto — so the stream is exactly reproducible by
	// damping.Replay, which always charges.
	pure bool

	// Route state mirror, used for classification and compared against the
	// engine's RIB-IN by the sweep.
	present bool
	ever    bool
	path    bgp.Path

	// Recorded history for the Finish cross-checks.
	updates             []damping.TimedUpdate
	suppressions        int
	firstSuppression    int // 1-based update index of the first onset
	maxPenalty          float64
	lastPenalty         float64
	suppressedAfterLast bool
	seenUpdate          bool
}

// seedStreams creates shadows for every RIB-IN entry that exists at attach
// time. Entries carrying nonzero damping state start desynchronized (their
// history was not observed), which exempts them from oracle comparison.
func (c *Checker) seedStreams() {
	now := c.k.Now()
	for id := 0; id < c.n.NumRouters(); id++ {
		rid := bgp.RouterID(id)
		if !c.n.RouterUp(rid) {
			continue
		}
		r := c.n.Router(rid)
		params, damps := r.DampingParams()
		r.EachRIBIn(now, func(v bgp.RIBInView) {
			st := &stream{
				pure:    true,
				present: v.Path != nil,
				ever:    v.EverPresent,
				path:    v.Path,
			}
			if damps {
				st.state = damping.NewState(params)
				if v.Penalty > 1e-6 || v.Suppressed {
					st.desynced = true
				}
			}
			c.streams[streamKey{Router: rid, Peer: v.Peer, Prefix: v.Prefix}] = st
		})
	}
}

// histFor returns (creating if needed) the shadow root-cause history for
// (router, peer).
func (c *Checker) histFor(router, peer bgp.RouterID) *rcn.History {
	k := histKey{Router: router, Peer: peer}
	h := c.hists[k]
	if h == nil {
		h = rcn.NewHistory(c.cfg.RCNHistorySize)
		c.hists[k] = h
	}
	return h
}

// dropRouterShadows forgets a crashed router's streams and histories; the
// engine discarded the corresponding state, and post-restart streams must
// start fresh on both sides.
func (c *Checker) dropRouterShadows(rid bgp.RouterID) {
	for k := range c.streams {
		if k.Router == rid {
			delete(c.streams, k)
		}
	}
	for k := range c.hists {
		if k.Router == rid {
			delete(c.hists, k)
		}
	}
}

// onUpdate observes one update before the engine applies it and drives the
// shadow through the same classification and charging rules.
func (c *Checker) onUpdate(at time.Duration, router, peer bgp.RouterID, prefix bgp.Prefix,
	withdraw bool, path bgp.Path, cause rcn.Cause) {
	c.updates++
	if !c.opts.NoOracle {
		c.oracleUpdate(at, router, peer, prefix, withdraw, path, cause)
	}
	if h := c.prevDebug.OnUpdate; h != nil {
		h(at, router, peer, prefix, withdraw, path, cause)
	}
}

func (c *Checker) oracleUpdate(at time.Duration, router, peer bgp.RouterID, prefix bgp.Prefix,
	withdraw bool, path bgp.Path, cause rcn.Cause) {
	key := streamKey{Router: router, Peer: peer, Prefix: prefix}
	st := c.streams[key]
	if st == nil {
		st = &stream{pure: true}
		if params, ok := c.n.Router(router).DampingParams(); ok {
			st.state = damping.NewState(params)
		}
		c.streams[key] = st
	}
	if st.state != nil {
		kind := damping.Classify(withdraw, st.present, st.ever, !withdraw && !path.Equal(st.path))
		charge := true
		chargeKind := kind
		if c.cfg.SelectiveDamping && !withdraw && st.present && len(path) > len(st.path) {
			charge = false
		}
		if c.cfg.EnableRCN {
			// The shadow history must witness every cause the engine's does,
			// even on desynced streams: histories are shared per (router,
			// peer) across prefixes, so skipping one stream's causes would
			// corrupt another's charges.
			charge = c.histFor(router, peer).Witness(cause)
			if charge && !cause.IsZero() {
				if cause.Status == rcn.LinkDown {
					chargeKind = damping.KindWithdrawal
				} else {
					chargeKind = damping.KindReannouncement
				}
			}
		}
		if !st.desynced {
			ev := st.state.Update(at, chargeKind, charge)
			if !charge {
				st.pure = false
			}
			if ev.BecameSuppressed {
				st.suppressions++
				if st.firstSuppression == 0 {
					st.firstSuppression = len(st.updates) + 1
				}
			}
			if ev.Penalty > st.maxPenalty {
				st.maxPenalty = ev.Penalty
			}
			st.updates = append(st.updates, damping.TimedUpdate{At: at, Kind: chargeKind})
			st.lastPenalty = ev.Penalty
			st.suppressedAfterLast = ev.Suppressed
			st.seenUpdate = true
		}
	}
	if withdraw {
		st.present = false
		st.path = nil
	} else {
		st.present, st.ever = true, true
		st.path = path
	}
}

// compareShadow checks one RIB-IN entry against its shadow stream during the
// per-event sweep.
func (c *Checker) compareShadow(at time.Duration, rid bgp.RouterID, v bgp.RIBInView) {
	st := c.streams[streamKey{Router: rid, Peer: v.Peer, Prefix: v.Prefix}]
	if st == nil {
		c.record(at, rid, "oracle-stream", fmt.Sprintf(
			"peer %d prefix %s: RIB-IN entry with no shadow stream (update applied without firing OnUpdate?)",
			v.Peer, v.Prefix))
		return
	}
	if (v.Path != nil) != st.present {
		c.record(at, rid, "oracle-stream", fmt.Sprintf(
			"peer %d prefix %s: engine route present=%t, shadow present=%t",
			v.Peer, v.Prefix, v.Path != nil, st.present))
	} else if !v.Path.Equal(st.path) {
		c.record(at, rid, "oracle-stream", fmt.Sprintf(
			"peer %d prefix %s: engine path [%s] != shadow path [%s]",
			v.Peer, v.Prefix, v.Path, st.path))
	}
	if v.EverPresent != st.ever {
		c.record(at, rid, "oracle-stream", fmt.Sprintf(
			"peer %d prefix %s: engine ever-present=%t, shadow ever-present=%t",
			v.Peer, v.Prefix, v.EverPresent, st.ever))
	}
	if st.state == nil || st.desynced || !v.HasDamping {
		return
	}
	if v.Suppressed != st.state.Suppressed() {
		if !v.Suppressed {
			// The engine lifted suppression (reuse timer or wheel sweep). The
			// shadow lifts only through this path, so mirror it — and if the
			// shadow's penalty has not decayed to the reuse threshold, the
			// engine reused the route too early. Under the wheel the engine's
			// penalty can undershoot the exact one by up to one decay tick
			// (and its cutoff crossing can diverge the same way), so an early
			// lift within that band is quantization, not a violation — but
			// the two histories diverge from here, so stop comparing.
			if !st.state.TryReuse(at) {
				if c.wheel && c.wheelLiftBorderline(at, st) {
					st.desynced = true
					return
				}
				c.record(at, rid, "damping-oracle", fmt.Sprintf(
					"peer %d prefix %s: engine lifted suppression but shadow penalty %.6g is still above the reuse threshold",
					v.Peer, v.Prefix, st.state.Penalty(at)))
				st.desynced = true
				return
			}
		} else {
			if c.wheel && c.wheelCutoffBorderline(at, st) {
				// Wheel quantization shifts update instants by up to one decay
				// tick either way, so its penalty can cross the cutoff
				// threshold when the exact shadow's stays within one tick's
				// decay below it. Within the documented bound — not a
				// violation, but the two histories diverge from here, so stop
				// comparing this stream.
				st.desynced = true
				return
			}
			c.record(at, rid, "damping-oracle", fmt.Sprintf(
				"peer %d prefix %s: engine suppressed, shadow not (penalty %.6g vs %.6g)",
				v.Peer, v.Prefix, v.Penalty, st.state.Penalty(at)))
			st.desynced = true
			return
		}
	}
	sp := st.state.Penalty(at)
	if c.wheel {
		if !c.wheelPenaltyClose(v.Penalty, sp, st.state.Params()) {
			c.record(at, rid, "damping-oracle", fmt.Sprintf(
				"peer %d prefix %s: engine penalty %.6g outside wheel bound [%.6g/e^(lambda*dt), %.6g*e^(lambda*dt)]",
				v.Peer, v.Prefix, v.Penalty, sp, sp))
			st.desynced = true
		}
	} else if !c.floatClose(v.Penalty, sp) {
		c.record(at, rid, "damping-oracle", fmt.Sprintf(
			"peer %d prefix %s: engine penalty %.6g != shadow penalty %.6g",
			v.Peer, v.Prefix, v.Penalty, sp))
		st.desynced = true
	}
}

// wheelTickFactor returns e^(lambda*DeltaT) for the given parameters: the
// maximum ratio by which the wheel's quantized penalty can deviate from the
// exact one in either direction. Update instants round down to decay ticks,
// so the quantized interval between a charge and a later query misses the
// exact interval by strictly less than one tick either way.
func (c *Checker) wheelTickFactor(p damping.Params) float64 {
	return math.Exp(p.Lambda() * c.wheelCfg.DeltaT.Seconds())
}

// wheelCutoffBorderline reports whether the exact shadow's penalty sits
// close enough below the cutoff threshold that the wheel engine's quantized
// penalty could legitimately have crossed it: within one decay tick's worth
// of decay (modulo Epsilon float slack).
func (c *Checker) wheelCutoffBorderline(at time.Duration, st *stream) bool {
	p := st.state.Params()
	sp := st.state.Penalty(at)
	lo := p.CutoffThreshold / c.wheelTickFactor(p) * (1 - c.opts.Epsilon)
	return sp > lo && sp <= p.CutoffThreshold*(1+c.opts.Epsilon)
}

// wheelLiftBorderline reports whether an engine state observed unsuppressed
// while the exact shadow is still suppressed is within the wheel's
// quantization bound. Two legitimate causes: the wheel's penalty undershot
// the exact one by up to one decay tick at a sweep (early reuse lift,
// shadow within one tick's decay above the reuse threshold), or the
// shadow's penalty crossed the cutoff at an update whose quantized penalty
// stayed below it (divergent suppression onset, shadow within one tick's
// decay above the cutoff threshold).
func (c *Checker) wheelLiftBorderline(at time.Duration, st *stream) bool {
	p := st.state.Params()
	sp := st.state.Penalty(at)
	factor := c.wheelTickFactor(p)
	reuseHi := p.ReuseThreshold * factor * (1 + c.opts.Epsilon)
	cutLo := p.CutoffThreshold * (1 - c.opts.Epsilon)
	cutHi := p.CutoffThreshold * factor * (1 + c.opts.Epsilon)
	return sp <= reuseHi || (sp >= cutLo && sp <= cutHi)
}

// wheelPenaltyClose checks the engine's quantized penalty against the
// two-sided wheel bound: shadow/e^(lambda*DeltaT) <= engine <=
// shadow*e^(lambda*DeltaT), with Epsilon slack on both edges (scaled as
// floatClose does), which also absorbs the wheel's flush-to-zero floor.
func (c *Checker) wheelPenaltyClose(engine, shadow float64, p damping.Params) bool {
	scale := 1.0
	if aa := math.Abs(engine); aa > scale {
		scale = aa
	}
	if bb := math.Abs(shadow); bb > scale {
		scale = bb
	}
	slack := c.opts.Epsilon * scale
	factor := c.wheelTickFactor(p)
	return engine >= shadow/factor-slack && engine <= shadow*factor+slack
}

// finishOracle runs the end-of-run cross-checks: damping.Replay over every
// pure recorded stream, and the analytic model over the configured ispAS
// stream. Streams are visited in deterministic (router, peer, prefix) order.
func (c *Checker) finishOracle(at time.Duration) {
	keys := make([]streamKey, 0, len(c.streams))
	for k := range c.streams {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Router != b.Router {
			return a.Router < b.Router
		}
		if a.Peer != b.Peer {
			return a.Peer < b.Peer
		}
		return a.Prefix < b.Prefix
	})
	for _, k := range keys {
		st := c.streams[k]
		if st.state == nil || st.desynced || !st.pure || !st.seenUpdate {
			continue
		}
		res, err := damping.Replay(st.state.Params(), st.updates)
		if err != nil {
			c.record(at, k.Router, "replay-oracle", fmt.Sprintf(
				"peer %d prefix %s: replay failed: %v", k.Peer, k.Prefix, err))
			continue
		}
		if c.wheel {
			// Replay lifts suppression at exact reuse instants; the shadow
			// mirrors the wheel engine's lifts, which lag by up to one decay
			// tick plus one sweep period. A re-charge landing inside that lag
			// window merges two exact suppression periods into one wheel
			// period, so the shadow may legitimately count fewer onsets than
			// replay — never more.
			if res.Suppressions < st.suppressions {
				c.record(at, k.Router, "replay-oracle", fmt.Sprintf(
					"peer %d prefix %s: replay saw %d suppression onsets, engine stream saw %d (wheel lifts lag, so the stream can only see fewer)",
					k.Peer, k.Prefix, res.Suppressions, st.suppressions))
			}
		} else if res.Suppressions != st.suppressions {
			c.record(at, k.Router, "replay-oracle", fmt.Sprintf(
				"peer %d prefix %s: replay saw %d suppression onsets, engine stream saw %d",
				k.Peer, k.Prefix, res.Suppressions, st.suppressions))
		}
		if !c.floatClose(res.MaxPenalty, st.maxPenalty) {
			c.record(at, k.Router, "replay-oracle", fmt.Sprintf(
				"peer %d prefix %s: replay max penalty %.6g != engine stream %.6g",
				k.Peer, k.Prefix, res.MaxPenalty, st.maxPenalty))
		}
		if last := res.Points[len(res.Points)-1]; !c.floatClose(last.Penalty, st.lastPenalty) {
			c.record(at, k.Router, "replay-oracle", fmt.Sprintf(
				"peer %d prefix %s: replay final penalty %.6g != engine stream %.6g",
				k.Peer, k.Prefix, last.Penalty, st.lastPenalty))
		}
	}
	c.finishAnalytic(at)
}

// finishAnalytic checks the engine's ispAS stream against the paper's
// single-router model: what the router adjacent to the flapping link actually
// accumulated must equal what Section 3 predicts for that event sequence.
func (c *Checker) finishAnalytic(at time.Duration) {
	if c.opts.Prefix == "" {
		return
	}
	st := c.streams[streamKey{Router: c.opts.ISP, Peer: c.opts.Origin, Prefix: c.opts.Prefix}]
	if st == nil || st.state == nil || st.desynced || !st.pure || !st.seenUpdate {
		return
	}
	events := make([]analytic.FlapEvent, len(st.updates))
	for i, u := range st.updates {
		events[i] = analytic.FlapEvent{At: u.At, Kind: u.Kind}
	}
	pred, err := analytic.Predict(st.state.Params(), events, 0)
	if err != nil {
		c.record(at, c.opts.ISP, "analytic-oracle", fmt.Sprintf(
			"origin %d prefix %s: predict failed: %v", c.opts.Origin, c.opts.Prefix, err))
		return
	}
	if !c.floatClose(pred.FinalPenalty, st.lastPenalty) {
		c.record(at, c.opts.ISP, "analytic-oracle", fmt.Sprintf(
			"origin %d prefix %s: analytic final penalty %.6g != engine %.6g",
			c.opts.Origin, c.opts.Prefix, pred.FinalPenalty, st.lastPenalty))
	}
	if pred.Suppressed != st.suppressedAfterLast {
		// Wheel mode: the shadow lifts when the wheel engine does, up to one
		// decay tick plus one sweep period after the exact reuse instant the
		// analytic model uses, so still-suppressed-under-wheel is within
		// bound. The opposite direction (shadow lifted, analytic suppressed)
		// is impossible under a lagging lift and always a violation.
		if !(c.wheel && st.suppressedAfterLast && !pred.Suppressed) {
			c.record(at, c.opts.ISP, "analytic-oracle", fmt.Sprintf(
				"origin %d prefix %s: analytic suppressed=%t at last event, engine %t",
				c.opts.Origin, c.opts.Prefix, pred.Suppressed, st.suppressedAfterLast))
		}
	}
	if pred.SuppressedAtEvent != st.firstSuppression {
		// The first onset precedes any reuse lift, so it is engine-exact even
		// in wheel mode (divergent onsets desync the stream before Finish).
		c.record(at, c.opts.ISP, "analytic-oracle", fmt.Sprintf(
			"origin %d prefix %s: analytic suppression onset at event %d, engine at %d",
			c.opts.Origin, c.opts.Prefix, pred.SuppressedAtEvent, st.firstSuppression))
	}
}

// floatClose compares penalties with relative tolerance Epsilon.
func (c *Checker) floatClose(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := 1.0
	if aa := math.Abs(a); aa > scale {
		scale = aa
	}
	if bb := math.Abs(b); bb > scale {
		scale = bb
	}
	return diff <= c.opts.Epsilon*scale
}
