package faults

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzParsePlan checks that every accepted plan survives a render/reparse
// round trip unchanged: Event.String() emits exactly the ParsePlan line
// format, and time.Duration strings round-trip exactly. Anything rejected
// must be rejected gracefully (error, not panic).
func FuzzParsePlan(f *testing.F) {
	f.Add("10s  flap 3 4 5s\n20s down 1 2\n80s up   1 2\n")
	f.Add("30s reset 3 4\n40s crash 7 15s\n45s crash 8\n55s restart 7\n")
	f.Add("0s loss 60s 0.01\n0s loss 60s 1 3 4\n# comment\n\n")
	f.Add("1h2m3.5s down 0 1\n-5s up 0 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		p, err := ParsePlan(strings.NewReader(input))
		if err != nil {
			return
		}
		var sb strings.Builder
		for _, e := range p.Events {
			sb.WriteString(e.String())
			sb.WriteByte('\n')
		}
		p2, err := ParsePlan(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("rendered plan rejected: %v\nrendered:\n%s", err, sb.String())
		}
		if !reflect.DeepEqual(p.Events, p2.Events) {
			t.Fatalf("round trip changed the plan:\n got %+v\nwant %+v\nrendered:\n%s",
				p2.Events, p.Events, sb.String())
		}
	})
}
