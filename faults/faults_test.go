package faults

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"rfd/bgp"
	"rfd/damping"
	"rfd/sim"
	"rfd/topology"
)

const testPrefix = bgp.Prefix("origin/8")

// buildNet constructs a 4×4 torus network with Cisco damping on a fresh
// kernel.
func buildNet(t testing.TB, seed uint64) (*sim.Kernel, *bgp.Network) {
	t.Helper()
	g, err := topology.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bgp.DefaultConfig()
	cfg.Seed = seed
	params := damping.Cisco()
	cfg.Damping = &params
	k := sim.NewKernel(sim.WithSeed(seed))
	n, err := bgp.NewNetwork(k, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, n
}

// gauntletPlan is the fault mix of the determinism test: a link flap, a
// session reset, a router crash/restart, and a burst-loss window.
func gauntletPlan() *Plan {
	return NewPlan(
		FlapLink(10*time.Second, 0, 1, 5*time.Second),
		ResetSession(30*time.Second, 1, 2),
		CrashRouter(50*time.Second, 5, 20*time.Second),
		NetworkLoss(70*time.Second, 10*time.Second, 1),
	)
}

// runGauntlet executes one full faulty run — warm-up, impairments (2% loss,
// 5 ms jitter), the gauntlet plan, an origination flap, watchdog drain — and
// returns the kernel's complete event trace plus headline counters.
func runGauntlet(t testing.TB, seed uint64) (trace string, delivered, dropped uint64, rep *Report) {
	t.Helper()
	k, n := buildNet(t, seed)
	var sb strings.Builder
	k.SetTrace(func(at time.Duration, name string) {
		fmt.Fprintf(&sb, "%d %s\n", at, name)
	})
	n.Router(0).Originate(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	n.ResetDamping()
	n.ResetCounters()

	imp := NewImpairments(seed)
	if err := imp.SetDefault(Profile{Loss: 0.02, MaxJitter: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	n.SetImpairment(imp)
	if err := gauntletPlan().Apply(n, k.Now(), imp); err != nil {
		t.Fatal(err)
	}
	// One origination flap rides on top of the faults.
	epoch := k.Now()
	k.At(epoch+20*time.Second, "test.flapdown", func() { n.Router(0).StopOriginating(testPrefix) })
	k.At(epoch+40*time.Second, "test.flapup", func() { n.Router(0).Originate(testPrefix) })

	rep = Watch(n, WatchdogConfig{})
	return sb.String(), n.Delivered(), n.Dropped(), rep
}

func TestDeterministicFaultTraces(t *testing.T) {
	// Acceptance: the same seed and the same Plan must yield byte-identical
	// event traces across two runs — with loss, jitter, a session reset and
	// a router crash/restart all in play.
	trace1, delivered1, dropped1, rep1 := runGauntlet(t, 7)
	trace2, delivered2, dropped2, rep2 := runGauntlet(t, 7)
	if trace1 != trace2 {
		t.Fatalf("traces differ between identical runs (%d vs %d bytes)", len(trace1), len(trace2))
	}
	if delivered1 != delivered2 || dropped1 != dropped2 {
		t.Fatalf("counters differ: delivered %d/%d, dropped %d/%d", delivered1, delivered2, dropped1, dropped2)
	}
	if rep1.Outcome != rep2.Outcome || rep1.Events != rep2.Events {
		t.Fatalf("reports differ: %s vs %s", rep1, rep2)
	}
	if dropped1 == 0 {
		t.Fatal("gauntlet dropped no messages; the impairment model is not wired in")
	}
	if rep1.Events == 0 {
		t.Fatal("watchdog stepped no events")
	}
	// A different seed must actually change the run (the RNG is live).
	trace3, _, _, _ := runGauntlet(t, 8)
	if trace1 == trace3 {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestPlanApplyFaultSequence(t *testing.T) {
	// The plan's faults must leave observable footprints: session churn
	// charges damping at the reset peers, the crash withdraws routes, and
	// the run ends consistent (converged) because the loss window is the
	// only lossy impairment and it ends before the final exchanges.
	k, n := buildNet(t, 1)
	n.Router(0).Originate(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	n.ResetDamping()
	n.ResetCounters()
	plan := NewPlan(
		ResetSession(10*time.Second, 1, 2),
		CrashRouter(30*time.Second, 5, 20*time.Second),
	)
	if err := plan.Apply(n, k.Now(), nil); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(k.Now() + 15*time.Second); err != nil {
		t.Fatal(err)
	}
	if p := n.Router(1).Penalty(2, testPrefix, k.Now()); p <= 0 {
		t.Fatalf("no damping charge at router 1 after session reset (penalty %v)", p)
	}
	if err := k.RunUntil(k.Now() + 20*time.Second); err != nil {
		t.Fatal(err)
	}
	if n.RouterUp(5) {
		t.Fatal("router 5 up during its crash window")
	}
	rep := Watch(n, WatchdogConfig{})
	if rep.Outcome != Converged {
		t.Fatalf("outcome = %s, want converged", rep)
	}
	if !n.RouterUp(5) {
		t.Fatal("router 5 never restarted")
	}
	if _, ok := n.Router(5).LocalRoute(testPrefix); !ok {
		t.Fatal("restarted router never relearned the route")
	}
}

func TestPlanValidate(t *testing.T) {
	_, n := buildNet(t, 1)
	cases := []struct {
		name string
		plan *Plan
	}{
		{"negative time", NewPlan(Event{At: -time.Second, Kind: KindLinkDown, A: 0, B: 1})},
		{"unknown link", NewPlan(FailLink(0, 0, 15))},
		{"unknown router", NewPlan(CrashRouter(0, 99, 0))},
		{"bad rate", NewPlan(NetworkLoss(0, time.Second, 1.5))},
		{"zero window", NewPlan(NetworkLoss(0, 0, 0.5))},
		{"unknown kind", NewPlan(Event{Kind: Kind(42)})},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(n); err == nil {
			t.Errorf("%s: Validate accepted the plan", tc.name)
		}
	}
	ok := gauntletPlan()
	if err := ok.Validate(n); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	// A loss window without an impairment model cannot be applied.
	if err := ok.Apply(n, n.Kernel().Now(), nil); err == nil {
		t.Fatal("Apply accepted a loss window without an impairment model")
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	const text = `
# fault plan
10s  flap 3 4 5s
20s  down 1 2
80s  up   1 2     # restore
30s  reset 3 4
40s  crash 7 15s
45s  crash 8
55s  restart 7
0s   loss 60s 0.01
0s   loss 60s 1 3 4
`
	plan, err := ParsePlan(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	want := NewPlan(
		FlapLink(10*time.Second, 3, 4, 5*time.Second),
		FailLink(20*time.Second, 1, 2),
		RestoreLink(80*time.Second, 1, 2),
		ResetSession(30*time.Second, 3, 4),
		CrashRouter(40*time.Second, 7, 15*time.Second),
		CrashRouter(45*time.Second, 8, 0),
		RestartRouter(55*time.Second, 7),
		NetworkLoss(0, 60*time.Second, 0.01),
		LinkLoss(0, 60*time.Second, 1, 3, 4),
	)
	if len(plan.Events) != len(want.Events) {
		t.Fatalf("parsed %d events, want %d", len(plan.Events), len(want.Events))
	}
	for i := range want.Events {
		if plan.Events[i] != want.Events[i] {
			t.Errorf("event %d = %+v, want %+v", i, plan.Events[i], want.Events[i])
		}
	}
	for _, bad := range []string{
		"10s explode 1 2",
		"abc down 1 2",
		"10s down 1",
		"10s crash x",
		"10s loss 60s nope",
		"10s flap 1 2",
	} {
		if _, err := ParsePlan(strings.NewReader(bad)); err == nil {
			t.Errorf("ParsePlan accepted %q", bad)
		}
	}
}

func TestImpairmentProfilesAndWindows(t *testing.T) {
	im := NewImpairments(1)
	if err := im.SetDefault(Profile{Loss: 1.5}); err == nil {
		t.Fatal("accepted loss > 1")
	}
	if err := im.SetDirection(0, 1, Profile{MaxJitter: -time.Second}); err == nil {
		t.Fatal("accepted negative jitter")
	}
	// Perfect default: nothing dropped, no jitter.
	for i := 0; i < 100; i++ {
		if drop, jitter := im.Impair(0, 0, 1); drop || jitter != 0 {
			t.Fatal("perfect link impaired a message")
		}
	}
	// Burst window on 0→1 only, during [10s, 20s).
	im.AddWindow(10*time.Second, 20*time.Second, 1, 0, 1)
	if drop, _ := im.Impair(5*time.Second, 0, 1); drop {
		t.Fatal("window fired before its start")
	}
	if drop, _ := im.Impair(15*time.Second, 1, 0); drop {
		t.Fatal("window fired on the reverse direction")
	}
	if drop, _ := im.Impair(15*time.Second, 0, 1); !drop {
		t.Fatal("burst window did not drop")
	}
	if drop, _ := im.Impair(20*time.Second, 0, 1); drop {
		t.Fatal("window fired at its (exclusive) end")
	}
	if im.Drops() != 1 {
		t.Fatalf("Drops = %d, want 1", im.Drops())
	}
	// Per-direction profile: all jitter, bounded.
	if err := im.SetDirection(2, 3, Profile{MaxJitter: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		drop, jitter := im.Impair(0, 2, 3)
		if drop {
			t.Fatal("jitter-only profile dropped")
		}
		if jitter < 0 || jitter >= 10*time.Millisecond {
			t.Fatalf("jitter %v outside [0, 10ms)", jitter)
		}
	}
}
