package faults

import (
	"fmt"
	"time"

	"rfd/bgp"
	"rfd/internal/xrand"
)

// Profile describes the steady-state impairment of one directed link: each
// message is lost with probability Loss, and surviving messages are delayed
// by a uniform extra amount in [0, MaxJitter). The zero Profile is a perfect
// link.
type Profile struct {
	// Loss is the per-message drop probability, in [0, 1].
	Loss float64
	// MaxJitter bounds the uniform extra delivery delay (0 disables jitter).
	MaxJitter time.Duration
}

// Validate checks the profile's ranges.
func (p Profile) Validate() error {
	if p.Loss < 0 || p.Loss > 1 {
		return fmt.Errorf("faults: loss probability %g outside [0, 1]", p.Loss)
	}
	if p.MaxJitter < 0 {
		return fmt.Errorf("faults: negative jitter bound %v", p.MaxJitter)
	}
	return nil
}

// window is one time-bounded loss override.
type window struct {
	start, end time.Duration
	rate       float64
	from, to   bgp.RouterID // Wildcard/Wildcard matches every direction
}

// Impairments is the standard bgp.LinkImpairment: a default profile, optional
// per-direction overrides, and time-bounded burst-loss windows. All
// randomness comes from one seeded stream consumed in the engine's
// deterministic send order, so a run with a given seed and plan is exactly
// reproducible.
//
// Impairments is not safe for concurrent use; every simulation run owns its
// own instance.
type Impairments struct {
	rng     *xrand.Rand
	seed    uint64
	def     Profile
	perDir  map[dirKey]Profile
	windows []window
	// perLink, when non-nil, holds one lazily-derived RNG stream per
	// directed link instead of the single global stream (see
	// UseLinkStreams).
	perLink map[dirKey]*xrand.Rand

	drops uint64
}

// dirKey keys a directed link endpoint pair.
type dirKey struct {
	from, to bgp.RouterID
}

// NewImpairments returns an impairment model with a perfect default profile,
// drawing randomness from a stream derived from seed (independent of the
// network's own streams for the same seed).
func NewImpairments(seed uint64) *Impairments {
	return &Impairments{
		rng:    xrand.New(seed).Split(),
		seed:   seed,
		perDir: make(map[dirKey]Profile),
	}
}

// UseLinkStreams switches the model from the single global stream — consumed
// in the engine's global send order — to an independent stream per directed
// link, derived deterministically from (seed, from, to) on first use.
//
// The global stream's consumption order is an artifact of the sequential
// engine: the sharded engine interleaves sends from different shards
// differently, so the same seed would impair different messages. Per-link
// streams are engine-independent — each directed link is sent from exactly
// one shard, in FIFO order, so every engine consumes each stream
// identically. Enable it before the run starts, and on both engines when
// comparing traces; the two modes are deliberately different random
// sequences even on the sequential engine.
func (im *Impairments) UseLinkStreams() {
	im.perLink = make(map[dirKey]*xrand.Rand)
}

// LinkStreams reports whether the model is in per-link stream mode (see
// UseLinkStreams). The sharded engine requires it.
func (im *Impairments) LinkStreams() bool { return im.perLink != nil }

// linkRNG returns the directed link's stream, deriving it on first use.
func (im *Impairments) linkRNG(from, to bgp.RouterID) *xrand.Rand {
	k := dirKey{from, to}
	if r, ok := im.perLink[k]; ok {
		return r
	}
	// Mix the endpoints into the seed; xrand.New splitmixes the result, so
	// adjacent (seed, from, to) triples still yield unrelated streams.
	h := im.seed ^ uint64(uint32(from))<<32 ^ uint64(uint32(to))*0x9E3779B97F4A7C15
	r := xrand.New(h).Split()
	im.perLink[k] = r
	return r
}

// SetDefault installs the profile applied to every direction without a
// per-direction override.
func (im *Impairments) SetDefault(p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	im.def = p
	return nil
}

// SetDirection overrides the profile of the from→to direction only. Use two
// calls for a symmetric link impairment.
func (im *Impairments) SetDirection(from, to bgp.RouterID, p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	im.perDir[dirKey{from, to}] = p
	return nil
}

// AddWindow forces a loss rate on the from→to direction (Wildcard/Wildcard:
// every direction) during [start, end), overriding lower profile rates —
// the effective loss is the maximum of the profile's and every active
// window's. Rate 1 models a burst outage. Times are kernel-absolute; Plan
// events shift themselves by the plan epoch before calling this.
func (im *Impairments) AddWindow(start, end time.Duration, rate float64, from, to bgp.RouterID) {
	im.windows = append(im.windows, window{start: start, end: end, rate: rate, from: from, to: to})
}

// Drops returns the number of messages this model has dropped.
func (im *Impairments) Drops() uint64 { return im.drops }

// Fork returns an independent copy at the same deterministic stream position:
// profiles, windows, drop count and the exact RNG state. The copy and the
// original consume their streams independently, so each fork of a network
// snapshot reproduces the impairment decisions a from-scratch run would make.
func (im *Impairments) Fork() *Impairments {
	c := &Impairments{
		rng:     im.rng.Clone(),
		seed:    im.seed,
		def:     im.def,
		perDir:  make(map[dirKey]Profile, len(im.perDir)),
		windows: append([]window(nil), im.windows...),
		drops:   im.drops,
	}
	for k, v := range im.perDir {
		c.perDir[k] = v
	}
	if im.perLink != nil {
		c.perLink = make(map[dirKey]*xrand.Rand, len(im.perLink))
		for k, r := range im.perLink {
			c.perLink[k] = r.Clone()
		}
	}
	return c
}

// ForkImpairment implements bgp.ImpairmentForker.
func (im *Impairments) ForkImpairment() bgp.LinkImpairment { return im.Fork() }

// Impair implements bgp.LinkImpairment.
func (im *Impairments) Impair(at time.Duration, from, to bgp.RouterID) (bool, time.Duration) {
	p, ok := im.perDir[dirKey{from, to}]
	if !ok {
		p = im.def
	}
	loss := p.Loss
	for _, w := range im.windows {
		if at < w.start || at >= w.end {
			continue
		}
		if (w.from == Wildcard && w.to == Wildcard) || (w.from == from && w.to == to) {
			if w.rate > loss {
				loss = w.rate
			}
		}
	}
	rng := im.rng
	if im.perLink != nil {
		rng = im.linkRNG(from, to)
	}
	if loss > 0 && (loss >= 1 || rng.Float64() < loss) {
		im.drops++
		return true, 0
	}
	var jitter time.Duration
	if p.MaxJitter > 0 {
		jitter = time.Duration(rng.Intn(int(p.MaxJitter)))
	}
	return false, jitter
}
