package faults

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"rfd/bgp"
)

func TestWatchdogConverges(t *testing.T) {
	k, n := buildNet(t, 3)
	n.Router(0).Originate(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// A clean origination flap, then a distant no-op event: after the flap
	// settles the watchdog sees a quiescent episode long before the no-op,
	// so a mid-run consistency check fires in addition to the final one.
	epoch := k.Now()
	k.At(epoch+time.Second, "test.flapdown", func() { n.Router(0).StopOriginating(testPrefix) })
	k.At(epoch+2*time.Second, "test.flapup", func() { n.Router(0).Originate(testPrefix) })
	k.At(epoch+time.Hour, "test.noop", func() {})

	rep := Watch(n, WatchdogConfig{})
	if rep.Outcome != Converged || rep.Err != nil {
		t.Fatalf("report = %s, want converged", rep)
	}
	if rep.Checks < 2 {
		t.Fatalf("Checks = %d, want at least one mid-run check plus the final one", rep.Checks)
	}
	if rep.QuiescentAt == 0 {
		t.Fatal("QuiescentAt never recorded")
	}
	if rep.Events == 0 {
		t.Fatal("watchdog stepped no events")
	}
	if rep.Recent != nil {
		t.Fatal("converged report carries a diagnosis ring")
	}
}

func TestWatchdogLivelock(t *testing.T) {
	k, n := buildNet(t, 3)
	n.Router(0).Originate(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// A self-rearming event never lets the queue drain.
	var rearm func()
	rearm = func() { k.At(k.Now()+time.Second, "test.rearm", rearm) }
	rearm()

	rep := Watch(n, WatchdogConfig{MaxEvents: 10, Recent: 4})
	if rep.Outcome != Livelock {
		t.Fatalf("report = %s, want livelock", rep)
	}
	if rep.Events != 10 {
		t.Fatalf("Events = %d, want exactly the 10-event budget", rep.Events)
	}
	if rep.Err == nil || !strings.Contains(rep.Err.Error(), "budget") {
		t.Fatalf("Err = %v, want budget exhaustion", rep.Err)
	}
	if len(rep.Recent) != 4 {
		t.Fatalf("Recent has %d entries, want the full ring of 4", len(rep.Recent))
	}
	for _, e := range rep.Recent {
		if e.Name != "test.rearm" {
			t.Fatalf("diagnosis ring holds %q, want the rearming event", e.Name)
		}
	}
	for i := 1; i < len(rep.Recent); i++ {
		if rep.Recent[i].At < rep.Recent[i-1].At {
			t.Fatal("diagnosis ring not oldest-first")
		}
	}
}

func TestWatchdogDiverges(t *testing.T) {
	k, n := buildNet(t, 3)
	n.Router(0).Originate(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Total loss: every update of the re-origination vanishes, so RIB-OUT
	// and RIB-IN disagree permanently — the watchdog must drain the run and
	// report divergence rather than error out mid-flight.
	imp := NewImpairments(3)
	if err := imp.SetDefault(Profile{Loss: 1}); err != nil {
		t.Fatal(err)
	}
	n.SetImpairment(imp)
	epoch := k.Now()
	k.At(epoch+time.Second, "test.flapdown", func() { n.Router(0).StopOriginating(testPrefix) })

	rep := Watch(n, WatchdogConfig{})
	if rep.Outcome != Diverged {
		t.Fatalf("report = %s, want diverged", rep)
	}
	if rep.Err == nil {
		t.Fatal("diverged report has no error")
	}
	if rep.DivergedAt == 0 {
		t.Fatal("DivergedAt never recorded")
	}
	if len(rep.Recent) == 0 {
		t.Fatal("diverged report has no diagnosis ring")
	}
	if n.Dropped() == 0 {
		t.Fatal("total-loss impairment dropped nothing")
	}
}

func TestWatchdogRestoresTrace(t *testing.T) {
	k, n := buildNet(t, 3)
	n.Router(0).Originate(testPrefix)
	calls := 0
	k.SetTrace(func(time.Duration, string) { calls++ })
	Watch(n, WatchdogConfig{})
	if calls == 0 {
		t.Fatal("watchdog did not chain onto the existing trace observer")
	}
	// The observer installed before Watch must be back afterwards.
	before := calls
	k.At(k.Now()+time.Second, "test.noop", func() {})
	k.Step()
	if calls != before+1 {
		t.Fatalf("trace observer not restored after Watch (calls %d, want %d)", calls, before+1)
	}
}

// rearmNet builds a network whose queue never drains (a self-rearming event),
// so only a budget or an abort can end the watch.
func rearmNet(t *testing.T) (*bgp.Network, func()) {
	t.Helper()
	k, n := buildNet(t, 3)
	n.Router(0).Originate(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var rearm func()
	rearm = func() { k.At(k.Now()+time.Millisecond, "test.rearm", rearm) }
	return n, rearm
}

func TestWatchdogAbortsOnCancel(t *testing.T) {
	n, rearm := rearmNet(t)
	rearm()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep := WatchContext(ctx, n, WatchdogConfig{MaxEvents: 1_000_000, Recent: 4})
	if rep.Outcome != Aborted {
		t.Fatalf("report = %s, want aborted", rep)
	}
	if !errors.Is(rep.Err, context.Canceled) {
		t.Fatalf("Err = %v, want to wrap context.Canceled", rep.Err)
	}
	// The cancel is polled amortized: the watch must stop within one poll
	// interval, not run anywhere near the event budget.
	if rep.Events > wallCheckInterval {
		t.Fatalf("aborted watch stepped %d events, want at most the %d-event poll interval", rep.Events, wallCheckInterval)
	}
}

func TestWatchdogAbortsOnWallBudget(t *testing.T) {
	n, rearm := rearmNet(t)
	rearm()
	rep := Watch(n, WatchdogConfig{MaxEvents: 1_000_000_000, Recent: 4, WallBudget: time.Nanosecond})
	if rep.Outcome != Aborted {
		t.Fatalf("report = %s, want aborted", rep)
	}
	if rep.Err == nil || !strings.Contains(rep.Err.Error(), "wall budget") {
		t.Fatalf("Err = %v, want wall budget exhaustion", rep.Err)
	}
	// A nanosecond budget trips on the entry poll, before any event fires —
	// the abort must be immediate, which also means the ring can be empty.
	if rep.Events != 0 {
		t.Fatalf("aborted watch stepped %d events under a nanosecond budget", rep.Events)
	}
	if rep.Outcome.String() != "aborted" {
		t.Fatalf("Outcome.String() = %q", rep.Outcome)
	}
}

// TestWatchContextUncancelledMatchesWatch: threading a live context changes
// nothing about a healthy run.
func TestWatchContextUncancelledMatchesWatch(t *testing.T) {
	k, n := buildNet(t, 3)
	n.Router(0).Originate(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	epoch := k.Now()
	k.At(epoch+time.Second, "test.flapdown", func() { n.Router(0).StopOriginating(testPrefix) })
	k.At(epoch+2*time.Second, "test.flapup", func() { n.Router(0).Originate(testPrefix) })
	rep := WatchContext(context.Background(), n, WatchdogConfig{WallBudget: time.Hour})
	if rep.Outcome != Converged || rep.Err != nil {
		t.Fatalf("report = %s, want converged", rep)
	}
}
