// Package faults is the deterministic fault-injection subsystem for the
// route-flap-damping simulator. It answers the robustness question the
// paper's idealized setup leaves open — do the timer interactions survive
// realistic impairments? — by perturbing a bgp.Network in three ways:
//
//   - Impairments: per-direction message loss, delay jitter, and burst-loss
//     windows, driven by a seeded RNG so runs stay exactly reproducible
//     (bgp.LinkImpairment is consulted in deterministic send order).
//   - A Plan of typed, scheduled fault events: link flaps, session resets,
//     router crash/restart, and loss windows, replacing ad-hoc SetLinkState
//     scripting in experiments and cmd/rfdsim.
//   - A convergence Watchdog that detects quiescence, runs consistency
//     checks only then, and reports divergence or livelock with a
//     bounded-event diagnosis instead of silently running to the kernel's
//     event limit.
//
// Everything here is deterministic: the same seed and the same Plan yield
// byte-identical event traces, including runs with loss, session resets and
// router crashes.
package faults

import (
	"fmt"
	"time"

	"rfd/bgp"
	"rfd/topology"
)

// Wildcard, as an endpoint of a LossWindow event, matches every router.
const Wildcard = bgp.RouterID(-1)

// Kind enumerates fault event types.
type Kind int

const (
	// KindLinkDown fails the A-B link at At (messages in flight are lost,
	// both ends withdraw, charging damping).
	KindLinkDown Kind = iota + 1
	// KindLinkUp restores the A-B link at At (both ends re-advertise).
	KindLinkUp
	// KindLinkFlap fails the A-B link at At and restores it Duration later.
	KindLinkFlap
	// KindSessionReset drops and immediately re-establishes the A-B session
	// at At: in-flight messages are lost, both ends flush the session RIBs
	// (charging damping like real session churn) and re-advertise.
	KindSessionReset
	// KindRouterCrash crashes Router at At; if Duration > 0 it restarts
	// Duration later, otherwise it stays down.
	KindRouterCrash
	// KindRouterRestart restarts a crashed Router at At.
	KindRouterRestart
	// KindLossWindow forces a message-loss rate of Rate on the A-B link
	// (both directions), or network-wide when both endpoints are Wildcard,
	// during [At, At+Duration). Requires an Impairments model at Apply.
	KindLossWindow
)

// String names the kind (also the verb of the Plan text format).
func (k Kind) String() string {
	switch k {
	case KindLinkDown:
		return "down"
	case KindLinkUp:
		return "up"
	case KindLinkFlap:
		return "flap"
	case KindSessionReset:
		return "reset"
	case KindRouterCrash:
		return "crash"
	case KindRouterRestart:
		return "restart"
	case KindLossWindow:
		return "loss"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled fault. Construct with the typed helpers (FlapLink,
// ResetSession, CrashRouter, …); the zero value is invalid.
type Event struct {
	// At is when the fault fires, relative to the plan epoch (the instant
	// Apply anchors the plan at — experiments use the end of warm-up).
	At time.Duration
	// Kind selects the fault type.
	Kind Kind
	// A and B are the link endpoints for link and session events, or the
	// scope of a LossWindow (Wildcard/Wildcard = network-wide).
	A, B bgp.RouterID
	// Router is the target of crash/restart events.
	Router bgp.RouterID
	// Duration is the flap down-time, crash outage (0 = stays down), or
	// loss-window length.
	Duration time.Duration
	// Rate is the loss probability of a LossWindow, in [0, 1].
	Rate float64
}

// String renders the event in the Plan text format (see ParsePlan).
func (e Event) String() string {
	switch e.Kind {
	case KindLinkDown, KindLinkUp, KindSessionReset:
		return fmt.Sprintf("%s %s %d %d", e.At, e.Kind, e.A, e.B)
	case KindLinkFlap:
		return fmt.Sprintf("%s %s %d %d %s", e.At, e.Kind, e.A, e.B, e.Duration)
	case KindRouterCrash:
		return fmt.Sprintf("%s %s %d %s", e.At, e.Kind, e.Router, e.Duration)
	case KindRouterRestart:
		return fmt.Sprintf("%s %s %d", e.At, e.Kind, e.Router)
	case KindLossWindow:
		if e.A == Wildcard && e.B == Wildcard {
			return fmt.Sprintf("%s %s %s %g", e.At, e.Kind, e.Duration, e.Rate)
		}
		return fmt.Sprintf("%s %s %s %g %d %d", e.At, e.Kind, e.Duration, e.Rate, e.A, e.B)
	default:
		return fmt.Sprintf("%s %s", e.At, e.Kind)
	}
}

// FailLink fails the a-b link at the given instant.
func FailLink(at time.Duration, a, b bgp.RouterID) Event {
	return Event{At: at, Kind: KindLinkDown, A: a, B: b}
}

// RestoreLink restores the a-b link at the given instant.
func RestoreLink(at time.Duration, a, b bgp.RouterID) Event {
	return Event{At: at, Kind: KindLinkUp, A: a, B: b}
}

// FlapLink fails the a-b link at the given instant and restores it downFor
// later.
func FlapLink(at time.Duration, a, b bgp.RouterID, downFor time.Duration) Event {
	return Event{At: at, Kind: KindLinkFlap, A: a, B: b, Duration: downFor}
}

// ResetSession resets the a-b BGP session at the given instant.
func ResetSession(at time.Duration, a, b bgp.RouterID) Event {
	return Event{At: at, Kind: KindSessionReset, A: a, B: b}
}

// CrashRouter crashes router id at the given instant; with downFor > 0 it
// restarts downFor later, with downFor == 0 it stays down.
func CrashRouter(at time.Duration, id bgp.RouterID, downFor time.Duration) Event {
	return Event{At: at, Kind: KindRouterCrash, Router: id, Duration: downFor}
}

// RestartRouter restarts a crashed router id at the given instant.
func RestartRouter(at time.Duration, id bgp.RouterID) Event {
	return Event{At: at, Kind: KindRouterRestart, Router: id}
}

// NetworkLoss forces every link to lose messages with probability rate
// during [at, at+dur) — a network-wide burst outage when rate is 1.
func NetworkLoss(at, dur time.Duration, rate float64) Event {
	return Event{At: at, Kind: KindLossWindow, A: Wildcard, B: Wildcard, Duration: dur, Rate: rate}
}

// LinkLoss forces the a-b link (both directions) to lose messages with
// probability rate during [at, at+dur).
func LinkLoss(at, dur time.Duration, rate float64, a, b bgp.RouterID) Event {
	return Event{At: at, Kind: KindLossWindow, A: a, B: b, Duration: dur, Rate: rate}
}

// Plan is a composable fault scenario: a set of typed events applied to one
// network run. Plans are plain data — build them with NewPlan/Add, parse
// them with ParsePlan, and hand them to Apply (or let experiment.Scenario
// and cmd/rfdsim do so).
type Plan struct {
	Events []Event
}

// NewPlan builds a plan from the given events.
func NewPlan(events ...Event) *Plan {
	return &Plan{Events: events}
}

// Add appends events and returns the plan for chaining.
func (p *Plan) Add(events ...Event) *Plan {
	p.Events = append(p.Events, events...)
	return p
}

// Validate checks every event against the network: link events must name
// existing links, router events existing routers, rates must lie in [0, 1]
// and times must be non-negative. A nil network skips the topology checks.
func (p *Plan) Validate(n *bgp.Network) error {
	for i, e := range p.Events {
		if e.At < 0 {
			return fmt.Errorf("faults: event %d (%s): negative time", i, e)
		}
		if e.Duration < 0 {
			return fmt.Errorf("faults: event %d (%s): negative duration", i, e)
		}
		switch e.Kind {
		case KindLinkDown, KindLinkUp, KindSessionReset, KindLinkFlap:
			if n != nil && !linkExists(n, e.A, e.B) {
				return fmt.Errorf("faults: event %d (%s): no link %d-%d", i, e, e.A, e.B)
			}
		case KindRouterCrash, KindRouterRestart:
			if n != nil && (e.Router < 0 || int(e.Router) >= n.NumRouters()) {
				return fmt.Errorf("faults: event %d (%s): no router %d", i, e, e.Router)
			}
		case KindLossWindow:
			if e.Rate < 0 || e.Rate > 1 {
				return fmt.Errorf("faults: event %d (%s): rate %g outside [0, 1]", i, e, e.Rate)
			}
			wild := e.A == Wildcard && e.B == Wildcard
			if !wild && n != nil && !linkExists(n, e.A, e.B) {
				return fmt.Errorf("faults: event %d (%s): no link %d-%d", i, e, e.A, e.B)
			}
			if e.Duration == 0 {
				return fmt.Errorf("faults: event %d (%s): zero-length loss window", i, e)
			}
		default:
			return fmt.Errorf("faults: event %d: unknown kind %v", i, e.Kind)
		}
	}
	return nil
}

// linkExists reports whether the topology has an a-b link regardless of its
// current up/down state. The check is graph-based, not router-based: a shard
// network of the sharded engine instantiates only the routers it owns, but
// its topology still names every link.
func linkExists(n *bgp.Network, a, b bgp.RouterID) bool {
	if a < 0 || b < 0 || int(a) >= n.NumRouters() || int(b) >= n.NumRouters() {
		return false
	}
	return n.Graph().HasEdge(topology.NodeID(a), topology.NodeID(b))
}

// Apply validates the plan and schedules its events on the network's kernel,
// each at epoch+Event.At (epoch must not precede the kernel's current time).
// LossWindow events are folded into imp instead of scheduled; a plan that
// contains them requires a non-nil imp, which must also be installed on the
// network (bgp.Network.SetImpairment) for the windows to take effect.
func (p *Plan) Apply(n *bgp.Network, epoch time.Duration, imp *Impairments) error {
	if err := p.Validate(n); err != nil {
		return err
	}
	k := n.Kernel()
	if epoch < k.Now() {
		return fmt.Errorf("faults: epoch %v precedes kernel time %v", epoch, k.Now())
	}
	// The network entry points error only on unknown links/routers, which
	// Validate has ruled out; overlapping faults (crashing a crashed router,
	// failing a failed link) are defined no-ops, so the callbacks have no
	// error to surface.
	for _, e := range p.Events {
		e := e
		at := epoch + e.At
		switch e.Kind {
		case KindLinkDown:
			k.At(at, "faults.down", func() { n.SetLinkState(e.A, e.B, false) })
		case KindLinkUp:
			k.At(at, "faults.up", func() { n.SetLinkState(e.A, e.B, true) })
		case KindLinkFlap:
			k.At(at, "faults.down", func() { n.SetLinkState(e.A, e.B, false) })
			k.At(at+e.Duration, "faults.up", func() { n.SetLinkState(e.A, e.B, true) })
		case KindSessionReset:
			k.At(at, "faults.reset", func() { n.ResetSession(e.A, e.B) })
		case KindRouterCrash:
			k.At(at, "faults.crash", func() { n.CrashRouter(e.Router) })
			if e.Duration > 0 {
				k.At(at+e.Duration, "faults.restart", func() { n.RestartRouter(e.Router) })
			}
		case KindRouterRestart:
			k.At(at, "faults.restart", func() { n.RestartRouter(e.Router) })
		case KindLossWindow:
			if imp == nil {
				return fmt.Errorf("faults: plan contains a loss window but no impairment model was given")
			}
			if e.A == Wildcard && e.B == Wildcard {
				imp.AddWindow(at, at+e.Duration, e.Rate, Wildcard, Wildcard)
			} else {
				imp.AddWindow(at, at+e.Duration, e.Rate, e.A, e.B)
				imp.AddWindow(at, at+e.Duration, e.Rate, e.B, e.A)
			}
		}
	}
	return nil
}

// ApplySharded schedules the plan on every shard of a sharded ensemble: each
// shard's kernel executes every fault at the same virtual time against its
// own replica of the link/session state (shard networks nil-guard the
// routers they don't own), which is what keeps the replicas in lockstep.
// imps, when non-nil, must hold one per-shard impairment model (same seed,
// link-stream mode — see Impairments.UseLinkStreams) for loss windows to fold
// into; pass nil when the plan has none.
func (p *Plan) ApplySharded(sn *bgp.ShardedNetwork, epoch time.Duration, imps []*Impairments) error {
	if imps != nil && len(imps) != sn.NumShards() {
		return fmt.Errorf("faults: %d impairment models for %d shards", len(imps), sn.NumShards())
	}
	for s := 0; s < sn.NumShards(); s++ {
		var imp *Impairments
		if imps != nil {
			imp = imps[s]
		}
		if err := p.Apply(sn.Shard(s), epoch, imp); err != nil {
			return err
		}
	}
	return nil
}
