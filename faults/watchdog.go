package faults

import (
	"context"
	"fmt"
	"time"

	"rfd/bgp"
)

// WatchdogConfig tunes the convergence watchdog. The zero value picks sane
// defaults.
type WatchdogConfig struct {
	// Grace is the idle gap required before the network is declared
	// quiescent and consistency-checked: no deliveries in flight, no
	// MRAI-held announcements, and no queued event within Grace of the
	// clock. Default 5 s.
	Grace time.Duration
	// MaxEvents bounds the events the watchdog will step before declaring a
	// livelock. Default 20,000,000.
	MaxEvents uint64
	// Recent is the size of the recent-event ring kept for the livelock /
	// divergence diagnosis. Default 32.
	Recent int
	// WallBudget bounds the watchdog's wall-clock time (virtual event budgets
	// catch scheduling loops; the wall budget catches runs that are merely
	// pathologically slow, which is what a service has to defend against).
	// Exhausting it aborts the run with Outcome Aborted. Zero means no wall
	// bound. The clock is polled at the same amortized granularity as the
	// context, so the overhead is unmeasurable.
	WallBudget time.Duration
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.Grace <= 0 {
		c.Grace = 5 * time.Second
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 20_000_000
	}
	if c.Recent <= 0 {
		c.Recent = 32
	}
	return c
}

// Outcome classifies how a watched run ended.
type Outcome int

const (
	// Converged: the event queue drained and the final consistency check
	// passed.
	Converged Outcome = iota + 1
	// Diverged: a consistency check at a quiescent instant (or the final
	// one) failed. With lossy impairment this is expected — a dropped
	// update is never retransmitted, so RIB-OUT and RIB-IN disagree until
	// the session next resets. The run still drains fully.
	Diverged
	// Livelock: the event budget was exhausted before the queue drained —
	// almost always a scheduling loop. The run is aborted at that point.
	Livelock
	// Aborted: the supervising context was cancelled or the wall-clock
	// budget ran out before the queue drained. Unlike Livelock this says
	// nothing about the simulation's health — the caller stopped waiting.
	Aborted
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Converged:
		return "converged"
	case Diverged:
		return "diverged"
	case Livelock:
		return "livelock"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// TraceEntry is one recent kernel event, kept for diagnosis.
type TraceEntry struct {
	At   time.Duration
	Name string
}

// Report is what the watchdog observed.
type Report struct {
	// Outcome classifies the run; Err carries the first consistency
	// violation (Diverged) or the budget detail (Livelock), nil otherwise.
	Outcome Outcome
	Err     error
	// DivergedAt is the quiescent instant the first violation was seen.
	DivergedAt time.Duration
	// QuiescentAt is the first instant the network was declared quiescent
	// (zero if it never was before the run ended).
	QuiescentAt time.Duration
	// Events is how many kernel events the watchdog stepped; Checks how
	// many consistency checks it ran.
	Events uint64
	Checks int
	// Recent holds the last events before the run stopped, oldest first —
	// the bounded-event diagnosis for livelock and divergence reports.
	Recent []TraceEntry
}

// String renders a one-line summary.
func (r *Report) String() string {
	s := fmt.Sprintf("%s after %d events (%d consistency checks)", r.Outcome, r.Events, r.Checks)
	if r.Err != nil {
		s += ": " + r.Err.Error()
	}
	return s
}

// Watch drives the network's kernel to completion under supervision: it
// steps events, and whenever the network is quiescent — nothing in flight,
// no MRAI-held announcements, and the next queued event at least Grace away
// — it runs Network.CheckConsistency (once per quiescent episode). The
// first violation marks the run Diverged but does not stop it; exhausting
// the event budget aborts it as a Livelock, with the most recent events
// attached as diagnosis. Experiments use Watch in place of a fixed event
// horizon: a healthy run terminates when the queue drains, a sick one is
// diagnosed instead of burning the kernel's whole event limit.
func Watch(n *bgp.Network, cfg WatchdogConfig) *Report {
	return WatchContext(context.Background(), n, cfg)
}

// wallCheckInterval is how many events WatchContext steps between polls of
// the context and the wall clock — frequent enough that an abort lands
// within microseconds, rare enough that the poll cost disappears.
const wallCheckInterval = 1024

// WatchContext is Watch under a supervising context and the config's
// wall-clock budget: both are polled every wallCheckInterval events, and
// tripping either aborts the run with Outcome Aborted, the cause on
// Report.Err and the recent-event ring attached. The network is left exactly
// as the last fired event left it, so a caller can inspect partial state.
func WatchContext(ctx context.Context, n *bgp.Network, cfg WatchdogConfig) *Report {
	cfg = cfg.withDefaults()
	k := n.Kernel()
	rep := &Report{}
	var deadline time.Time
	if cfg.WallBudget > 0 {
		deadline = time.Now().Add(cfg.WallBudget)
	}

	// Chain onto any existing trace observer to keep the diagnosis ring.
	ring := make([]TraceEntry, 0, cfg.Recent)
	next := 0
	prev := k.Trace()
	k.SetTrace(func(at time.Duration, name string) {
		if len(ring) < cfg.Recent {
			ring = append(ring, TraceEntry{At: at, Name: name})
		} else {
			ring[next] = TraceEntry{At: at, Name: name}
			next = (next + 1) % cfg.Recent
		}
		if prev != nil {
			prev(at, name)
		}
	})
	defer k.SetTrace(prev)

	checkedEpisode := false
	lastDelivered := n.Delivered()
	nextPoll := rep.Events // poll on entry, then every wallCheckInterval
	for {
		headAt, ok := k.NextEventTime()
		if !ok {
			break
		}
		if n.Quiescent() {
			if delivered := n.Delivered(); delivered != lastDelivered {
				lastDelivered = delivered
				checkedEpisode = false
			}
			if !checkedEpisode && headAt-k.Now() >= cfg.Grace && n.PendingAnnouncements() == 0 {
				if rep.QuiescentAt == 0 {
					rep.QuiescentAt = k.Now()
				}
				rep.Checks++
				checkedEpisode = true
				if err := n.CheckConsistency(); err != nil && rep.Err == nil {
					rep.Outcome = Diverged
					rep.Err = err
					rep.DivergedAt = k.Now()
				}
			}
		}
		if rep.Events >= cfg.MaxEvents {
			rep.Outcome = Livelock
			rep.Err = fmt.Errorf("faults: watchdog event budget exhausted (%d events, now %v)", rep.Events, k.Now())
			rep.Recent = ringSlice(ring, next)
			return rep
		}
		if rep.Events >= nextPoll {
			nextPoll = rep.Events + wallCheckInterval
			if err := ctx.Err(); err != nil {
				rep.Outcome = Aborted
				rep.Err = fmt.Errorf("faults: watchdog aborted (%d events, now %v): %w", rep.Events, k.Now(), context.Cause(ctx))
				rep.Recent = ringSlice(ring, next)
				return rep
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				rep.Outcome = Aborted
				rep.Err = fmt.Errorf("faults: watchdog wall budget %v exhausted (%d events, now %v)", cfg.WallBudget, rep.Events, k.Now())
				rep.Recent = ringSlice(ring, next)
				return rep
			}
		}
		k.Step()
		rep.Events++
	}

	// Queue drained: the network is quiescent by construction — run the
	// final consistency check.
	rep.Checks++
	if err := n.CheckConsistency(); err != nil && rep.Err == nil {
		rep.Outcome = Diverged
		rep.Err = err
		rep.DivergedAt = k.Now()
	}
	if rep.Outcome == 0 {
		rep.Outcome = Converged
	}
	if rep.Outcome != Converged {
		rep.Recent = ringSlice(ring, next)
	}
	return rep
}

// ringSlice linearizes the diagnosis ring, oldest entry first.
func ringSlice(ring []TraceEntry, next int) []TraceEntry {
	out := make([]TraceEntry, 0, len(ring))
	out = append(out, ring[next:]...)
	out = append(out, ring[:next]...)
	return out
}
