package faults

import (
	"strings"
	"testing"
)

// TestParsePlanLongCommentLine: a comment longer than bufio.Scanner's default
// 64 KiB token limit used to abort the parse with a bare "token too long".
func TestParsePlanLongCommentLine(t *testing.T) {
	input := "# " + strings.Repeat("x", 80*1024) + "\n10s down 1 2\n"
	p, err := ParsePlan(strings.NewReader(input))
	if err != nil {
		t.Fatalf("long comment line rejected: %v", err)
	}
	if len(p.Events) != 1 {
		t.Fatalf("got %d events, want 1", len(p.Events))
	}
}

// TestParsePlanOverlongLine: a line beyond the 1 MiB hard cap must fail with
// an error naming the offending line.
func TestParsePlanOverlongLine(t *testing.T) {
	input := "10s down 1 2\n# " + strings.Repeat("x", 2<<20) + "\n"
	_, err := ParsePlan(strings.NewReader(input))
	if err == nil {
		t.Fatal("oversized line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error does not name the offending line: %v", err)
	}
}

// TestParsePlanRejectsNaNLossRate: NaN passes every ordinary range check
// (all comparisons with it are false), so it used to slip through as a loss
// rate and poison the impairment model.
func TestParsePlanRejectsNaNLossRate(t *testing.T) {
	for _, bad := range []string{"nan", "NaN", "-nan"} {
		_, err := ParsePlan(strings.NewReader("0s loss 60s " + bad + "\n"))
		if err == nil {
			t.Errorf("loss rate %q accepted", bad)
		}
	}
}
