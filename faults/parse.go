package faults

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"rfd/bgp"
)

// ParsePlan reads the Plan text format, one event per line (the -faults file
// format of cmd/rfdsim). Blank lines and #-comments are ignored. Each line
// is a time, a verb, and the verb's arguments; times use Go duration syntax
// and are relative to the plan epoch:
//
//	# fail the 3-4 link at t=10s for 5s
//	10s  flap 3 4 5s
//	20s  down 1 2          # fail only
//	80s  up   1 2          # restore only
//	30s  reset 3 4         # BGP session reset
//	40s  crash 7 15s       # router 7 down for 15s
//	40s  crash 7           # ... or down for good
//	55s  restart 7
//	0s   loss 60s 0.01     # 1% network-wide loss for 60s
//	0s   loss 60s 1 3 4    # burst outage on link 3-4
func ParsePlan(r io.Reader) (*Plan, error) {
	p := &Plan{}
	sc := bufio.NewScanner(r)
	// The default Scanner token limit is 64 KiB, which a long generated
	// comment can exceed; allow lines up to 1 MiB, like trace.ReadJSONL.
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		ev, err := parseEvent(fields)
		if err != nil {
			return nil, fmt.Errorf("faults: line %d: %w", lineno, err)
		}
		p.Add(ev)
	}
	if err := sc.Err(); err != nil {
		// The scanner stops at the offending line (e.g. one exceeding the
		// buffer limit), which is the line after the last successful scan.
		return nil, fmt.Errorf("faults: line %d: %w", lineno+1, err)
	}
	return p, nil
}

// parseEvent decodes one "<at> <verb> <args...>" line.
func parseEvent(fields []string) (Event, error) {
	at, err := time.ParseDuration(fields[0])
	if err != nil {
		return Event{}, fmt.Errorf("bad time %q: %w", fields[0], err)
	}
	if len(fields) < 2 {
		return Event{}, fmt.Errorf("missing verb after %q", fields[0])
	}
	verb, args := fields[1], fields[2:]
	switch verb {
	case "down", "up", "reset":
		a, b, err := parseLink(args, 2)
		if err != nil {
			return Event{}, fmt.Errorf("%s: %w", verb, err)
		}
		switch verb {
		case "down":
			return FailLink(at, a, b), nil
		case "up":
			return RestoreLink(at, a, b), nil
		default:
			return ResetSession(at, a, b), nil
		}
	case "flap":
		a, b, err := parseLink(args, 3)
		if err != nil {
			return Event{}, fmt.Errorf("flap: %w", err)
		}
		downFor, err := time.ParseDuration(args[2])
		if err != nil {
			return Event{}, fmt.Errorf("flap: bad duration %q: %w", args[2], err)
		}
		return FlapLink(at, a, b, downFor), nil
	case "crash":
		if len(args) < 1 || len(args) > 2 {
			return Event{}, fmt.Errorf("crash: want <router> [<downFor>], got %d args", len(args))
		}
		id, err := parseRouter(args[0])
		if err != nil {
			return Event{}, fmt.Errorf("crash: %w", err)
		}
		var downFor time.Duration
		if len(args) == 2 {
			if downFor, err = time.ParseDuration(args[1]); err != nil {
				return Event{}, fmt.Errorf("crash: bad duration %q: %w", args[1], err)
			}
		}
		return CrashRouter(at, id, downFor), nil
	case "restart":
		if len(args) != 1 {
			return Event{}, fmt.Errorf("restart: want <router>, got %d args", len(args))
		}
		id, err := parseRouter(args[0])
		if err != nil {
			return Event{}, fmt.Errorf("restart: %w", err)
		}
		return RestartRouter(at, id), nil
	case "loss":
		if len(args) != 2 && len(args) != 4 {
			return Event{}, fmt.Errorf("loss: want <dur> <rate> [<a> <b>], got %d args", len(args))
		}
		dur, err := time.ParseDuration(args[0])
		if err != nil {
			return Event{}, fmt.Errorf("loss: bad duration %q: %w", args[0], err)
		}
		rate, err := strconv.ParseFloat(args[1], 64)
		if err != nil || math.IsNaN(rate) {
			return Event{}, fmt.Errorf("loss: bad rate %q", args[1])
		}
		if len(args) == 2 {
			return NetworkLoss(at, dur, rate), nil
		}
		a, b, err := parseLink(args[2:], 2)
		if err != nil {
			return Event{}, fmt.Errorf("loss: %w", err)
		}
		return LinkLoss(at, dur, rate, a, b), nil
	default:
		return Event{}, fmt.Errorf("unknown verb %q", verb)
	}
}

// parseLink decodes the two leading router ids of args (which must have at
// least want fields in total).
func parseLink(args []string, want int) (a, b bgp.RouterID, err error) {
	if len(args) != want {
		return 0, 0, fmt.Errorf("want %d args, got %d", want, len(args))
	}
	if a, err = parseRouter(args[0]); err != nil {
		return 0, 0, err
	}
	if b, err = parseRouter(args[1]); err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

// parseRouter decodes one router id.
func parseRouter(s string) (bgp.RouterID, error) {
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad router id %q", s)
	}
	return bgp.RouterID(v), nil
}
