// Package trace records simulation events as a structured, bounded log that
// can be rendered as text, streamed as JSON Lines, filtered, and read back.
// It backs rfdsim's -trace flag and is handy when debugging why a particular
// (router, peer) pair suppressed a route.
//
// The package is independent of the bgp engine; bgp.TraceHooks adapts a Log
// to the engine's observation hooks.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"
)

// Kind labels an event. The values double as the JSON encoding.
type Kind string

// Event kinds recorded by the bgp adapter.
const (
	// KindDeliver is an update message delivery.
	KindDeliver Kind = "deliver"
	// KindSuppress is a damping state turning suppression on.
	KindSuppress Kind = "suppress"
	// KindUnsuppress is a reuse lifting suppression.
	KindUnsuppress Kind = "unsuppress"
	// KindReuse is a reuse-timer outcome (noisy or silent).
	KindReuse Kind = "reuse"
	// KindPenalty is a damping penalty change.
	KindPenalty Kind = "penalty"
)

// Event is one recorded occurrence. Fields that don't apply to a kind are
// left zero and omitted from JSON.
type Event struct {
	// At is the virtual time, encoded in JSON as nanoseconds.
	At time.Duration `json:"at"`
	// Kind labels what happened.
	Kind Kind `json:"kind"`
	// Router is the observing router; Peer the session peer (or the message
	// sender for deliveries).
	Router int `json:"router"`
	Peer   int `json:"peer"`
	// Prefix is the destination concerned.
	Prefix string `json:"prefix,omitempty"`
	// Withdraw marks delivered withdrawals.
	Withdraw bool `json:"withdraw,omitempty"`
	// Path is the delivered AS path, space-separated.
	Path string `json:"path,omitempty"`
	// Penalty is the post-update penalty for KindPenalty events.
	Penalty float64 `json:"penalty,omitempty"`
	// Noisy marks reuse events that changed the Local-RIB.
	Noisy bool `json:"noisy,omitempty"`
	// Cause is the root cause in the paper's notation, when attached.
	Cause string `json:"cause,omitempty"`
}

// String renders the event as one text line.
func (e Event) String() string {
	switch e.Kind {
	case KindDeliver:
		verb := "announce"
		if e.Withdraw {
			verb = "withdraw"
		}
		s := fmt.Sprintf("%12.3fs deliver  %d->%d %s %s", e.At.Seconds(), e.Peer, e.Router, verb, e.Prefix)
		if e.Path != "" {
			s += " path=[" + e.Path + "]"
		}
		if e.Cause != "" {
			s += " cause=" + e.Cause
		}
		return s
	case KindPenalty:
		return fmt.Sprintf("%12.3fs penalty  %d<-%d %s = %.0f", e.At.Seconds(), e.Router, e.Peer, e.Prefix, e.Penalty)
	case KindSuppress, KindUnsuppress:
		return fmt.Sprintf("%12.3fs %s %d<-%d %s", e.At.Seconds(), e.Kind, e.Router, e.Peer, e.Prefix)
	case KindReuse:
		mode := "silent"
		if e.Noisy {
			mode = "noisy"
		}
		return fmt.Sprintf("%12.3fs reuse    %d<-%d %s (%s)", e.At.Seconds(), e.Router, e.Peer, e.Prefix, mode)
	default:
		return fmt.Sprintf("%12.3fs %s router=%d peer=%d %s", e.At.Seconds(), e.Kind, e.Router, e.Peer, e.Prefix)
	}
}

// DefaultCapacity bounds a Log constructed with NewLog(0).
const DefaultCapacity = 1 << 20

// Log is a bounded in-memory event recorder. When full, further events are
// dropped and counted (a trace is a debugging aid; dropping beats unbounded
// memory in hour-long virtual runs). The zero value is unusable; use NewLog.
type Log struct {
	capacity int
	events   []Event
	dropped  int
}

// NewLog returns a log holding up to capacity events (DefaultCapacity if
// capacity <= 0).
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Log{capacity: capacity}
}

// Append records an event, dropping it if the log is full.
func (l *Log) Append(e Event) {
	if len(l.events) >= l.capacity {
		l.dropped++
		return
	}
	l.events = append(l.events, e)
}

// Len returns the number of stored events.
func (l *Log) Len() int { return len(l.events) }

// Dropped returns how many events were discarded because the log was full.
func (l *Log) Dropped() int { return l.dropped }

// Events returns a copy of the stored events in record order.
func (l *Log) Events() []Event {
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Filter returns the stored events satisfying keep, in order.
func (l *Log) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range l.events {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// WriteText renders one line per event.
func (l *Log) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range l.events {
		if _, err := fmt.Fprintln(bw, e); err != nil {
			return err
		}
	}
	if l.dropped > 0 {
		fmt.Fprintf(bw, "... %d events dropped (log capacity %d)\n", l.dropped, l.capacity)
	}
	return bw.Flush()
}

// WriteJSONL streams the events as JSON Lines.
func (l *Log) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range l.events {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: encode: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSON Lines stream produced by WriteJSONL. Blank lines
// are skipped. The returned log is genuinely unbounded: reading back a stream
// longer than DefaultCapacity keeps every event (the bounded default exists
// to cap live recording, not to silently truncate data already on disk).
func ReadJSONL(r io.Reader) (*Log, error) {
	l := &Log{capacity: math.MaxInt}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		l.Append(e)
	}
	if err := sc.Err(); err != nil {
		// The scanner stops at the offending line, so the failure is at the
		// line after the last successful scan.
		return nil, fmt.Errorf("trace: line %d: %w", line+1, err)
	}
	return l, nil
}
