package trace

import "sort"

// Canonical returns the log's events in canonical order: a stable sort by
// (At, Router). The sharded engine records events in per-shard logs, so raw
// record order differs from the sequential engine's even when every event is
// identical; both engines preserve each router's per-instant event order in
// its own stream, so the stable (At, Router) sort maps both recordings onto
// one comparable sequence. Use with Merge to compare engines byte for byte.
func (l *Log) Canonical() []Event {
	out := l.Events()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Router < out[j].Router
	})
	return out
}

// Merge combines several logs (e.g. one per shard) into a single log in
// canonical (At, Router) order, preserving each input's relative order for
// equal keys — inputs are concatenated in argument order before the stable
// sort, so per-router streams stay intact as long as each router's events
// live in exactly one input log. Dropped counts are summed: a merge of
// truncated logs is itself marked truncated.
func Merge(logs ...*Log) *Log {
	total, dropped := 0, 0
	for _, l := range logs {
		total += l.Len()
		dropped += l.Dropped()
	}
	m := &Log{capacity: total, dropped: dropped}
	m.events = make([]Event, 0, total)
	for _, l := range logs {
		m.events = append(m.events, l.events...)
	}
	sort.SliceStable(m.events, func(i, j int) bool {
		if m.events[i].At != m.events[j].At {
			return m.events[i].At < m.events[j].At
		}
		return m.events[i].Router < m.events[j].Router
	})
	return m
}
