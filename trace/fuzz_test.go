package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzJSONLRoundTrip checks that any stream ReadJSONL accepts re-encodes and
// re-reads to the identical event sequence (JSON floats use the shortest
// exact representation, so no precision is lost), and that malformed input
// fails gracefully (error, not panic).
func FuzzJSONLRoundTrip(f *testing.F) {
	f.Add([]byte(`{"at":1000000000,"kind":"deliver","router":1,"peer":2,"prefix":"origin/8","path":"3 2"}` + "\n"))
	f.Add([]byte(`{"at":5,"kind":"penalty","router":0,"peer":9,"penalty":2750.5}` + "\n" +
		`{"at":6,"kind":"suppress","router":0,"peer":9}` + "\n\n" +
		`{"at":7,"kind":"reuse","router":0,"peer":9,"noisy":true}` + "\n"))
	f.Fuzz(func(t *testing.T, input []byte) {
		l, err := ReadJSONL(bytes.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := l.WriteJSONL(&buf); err != nil {
			// JSON numbers never decode to NaN/Inf, so everything ReadJSONL
			// accepts must re-encode; a write failure here is a bug.
			t.Fatalf("re-encoding accepted events failed: %v", err)
		}
		l2, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own output failed: %v\noutput:\n%s", err, buf.String())
		}
		if !reflect.DeepEqual(l.Events(), l2.Events()) {
			t.Fatalf("round trip changed events:\n got %+v\nwant %+v", l2.Events(), l.Events())
		}
	})
}
