package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleEvents() []Event {
	return []Event{
		{At: time.Second, Kind: KindDeliver, Router: 2, Peer: 1, Prefix: "p/8", Path: "1 0", Cause: "{[0 0], down, 1}"},
		{At: 2 * time.Second, Kind: KindDeliver, Router: 3, Peer: 2, Prefix: "p/8", Withdraw: true},
		{At: 3 * time.Second, Kind: KindPenalty, Router: 3, Peer: 2, Prefix: "p/8", Penalty: 1000},
		{At: 4 * time.Second, Kind: KindSuppress, Router: 3, Peer: 2, Prefix: "p/8"},
		{At: 5 * time.Second, Kind: KindReuse, Router: 3, Peer: 2, Prefix: "p/8", Noisy: true},
		{At: 6 * time.Second, Kind: KindUnsuppress, Router: 3, Peer: 2, Prefix: "p/8"},
	}
}

func TestLogAppendAndEvents(t *testing.T) {
	l := NewLog(0)
	for _, e := range sampleEvents() {
		l.Append(e)
	}
	if l.Len() != 6 || l.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d", l.Len(), l.Dropped())
	}
	got := l.Events()
	if got[0].Kind != KindDeliver || got[5].Kind != KindUnsuppress {
		t.Fatal("order not preserved")
	}
	// Events returns a copy.
	got[0].Router = 99
	if l.Events()[0].Router == 99 {
		t.Fatal("Events aliases storage")
	}
}

func TestLogCapacityDrops(t *testing.T) {
	l := NewLog(3)
	for i := 0; i < 10; i++ {
		l.Append(Event{At: time.Duration(i), Kind: KindDeliver})
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if l.Dropped() != 7 {
		t.Fatalf("Dropped = %d, want 7", l.Dropped())
	}
	// The kept events are the earliest ones.
	if l.Events()[2].At != 2 {
		t.Fatal("capacity did not keep the head of the stream")
	}
}

func TestFilter(t *testing.T) {
	l := NewLog(0)
	for _, e := range sampleEvents() {
		l.Append(e)
	}
	suppressions := l.Filter(func(e Event) bool { return e.Kind == KindSuppress })
	if len(suppressions) != 1 || suppressions[0].At != 4*time.Second {
		t.Fatalf("filter result %v", suppressions)
	}
	if got := l.Filter(func(Event) bool { return false }); got != nil {
		t.Fatal("empty filter != nil")
	}
}

func TestWriteText(t *testing.T) {
	l := NewLog(2)
	for _, e := range sampleEvents() {
		l.Append(e)
	}
	var buf bytes.Buffer
	if err := l.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"deliver", "announce", "path=[1 0]", "cause={[0 0], down, 1}", "dropped"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestEventStringPerKind(t *testing.T) {
	for _, e := range sampleEvents() {
		if e.String() == "" {
			t.Fatalf("empty String for %v", e.Kind)
		}
	}
	withdraw := Event{Kind: KindDeliver, Withdraw: true}
	if !strings.Contains(withdraw.String(), "withdraw") {
		t.Fatal("withdrawal not labeled")
	}
	silent := Event{Kind: KindReuse}
	if !strings.Contains(silent.String(), "silent") {
		t.Fatal("silent reuse not labeled")
	}
	unknown := Event{Kind: Kind("custom")}
	if !strings.Contains(unknown.String(), "custom") {
		t.Fatal("unknown kind not rendered")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	l := NewLog(0)
	for _, e := range sampleEvents() {
		l.Append(e)
	}
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != l.Len() {
		t.Fatalf("round trip lost events: %d -> %d", l.Len(), back.Len())
	}
	orig, parsed := l.Events(), back.Events()
	for i := range orig {
		if orig[i] != parsed[i] {
			t.Fatalf("event %d changed: %+v -> %+v", i, orig[i], parsed[i])
		}
	}
}

func TestReadJSONLSkipsBlankAndRejectsGarbage(t *testing.T) {
	l, err := ReadJSONL(strings.NewReader("\n{\"at\":1,\"kind\":\"deliver\",\"router\":1,\"peer\":2}\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}
