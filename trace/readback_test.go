package trace

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestReadJSONLPastDefaultCapacity is the regression test for ReadJSONL
// silently truncating long streams: it used to read into a NewLog(0), whose
// DefaultCapacity bound dropped every event past 1<<20 even though the doc
// promised an unbounded read-back.
func TestReadJSONLPastDefaultCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a >DefaultCapacity JSONL stream")
	}
	const extra = 5
	const total = DefaultCapacity + extra
	var buf bytes.Buffer
	buf.Grow(total * 48)
	for i := 0; i < total; i++ {
		// Stream-encode by hand; building a Log of this size first would
		// defeat the point (and NewLog caps at DefaultCapacity anyway).
		fmt.Fprintf(&buf, "{\"at\":%d,\"kind\":\"penalty\",\"router\":1,\"peer\":2,\"penalty\":%d}\n", i, i)
	}
	l, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != total {
		t.Fatalf("read back %d events, want %d (stream truncated at capacity?)", l.Len(), total)
	}
	if l.Dropped() != 0 {
		t.Fatalf("read-back dropped %d events", l.Dropped())
	}
	// Spot-check the tail survived intact.
	last := l.Events()[total-1]
	if last.At != total-1 || last.Penalty != float64(total-1) {
		t.Fatalf("last event corrupted: %+v", last)
	}
}

// TestReadJSONLOverlongLine verifies an oversized line fails with an error
// naming the line, not a bare scanner error.
func TestReadJSONLOverlongLine(t *testing.T) {
	input := "{\"at\":1,\"kind\":\"deliver\",\"router\":0,\"peer\":1}\n" +
		"{\"at\":2,\"kind\":\"deliver\",\"path\":\"" + strings.Repeat("7 ", 1<<20) + "\"}\n"
	_, err := ReadJSONL(strings.NewReader(input))
	if err == nil {
		t.Fatal("oversized line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error does not name the offending line: %v", err)
	}
}
