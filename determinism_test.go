package rfd_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"rfd/bgp"
	"rfd/damping"
	"rfd/faults"
	"rfd/sim"
	"rfd/topology"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenTracePath is the recorded kernel event trace of the reference run.
// It was captured before the allocation-free core rewrite (interned paths,
// slab event queue, dense RIBs) and pins the engine's event-for-event
// behaviour: any change to scheduling order, timer interaction, or fault
// handling shows up as a trace diff.
const goldenTracePath = "testdata/golden_trace_mesh5x5_faulty.txt"

// mesh5FaultyTrace runs the reference scenario — a seeded 5×5 torus with
// Cisco damping, 1% uniform message loss plus delivery jitter, three
// scripted session resets, and two full (withdrawal, announcement) pulses —
// and returns the byte trace of every kernel event, captured via
// sim.Kernel.SetTrace as "<nanoseconds> <event name>" lines.
func mesh5FaultyTrace(t testing.TB) []byte {
	t.Helper()
	g, err := topology.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bgp.DefaultConfig()
	params := damping.Cisco()
	cfg.Damping = &params
	cfg.Seed = 1

	k := sim.NewKernel(sim.WithSeed(cfg.Seed))
	n, err := bgp.NewNetwork(k, g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	scratch := make([]byte, 0, 32)
	k.SetTrace(func(at time.Duration, name string) {
		scratch = strconv.AppendInt(scratch[:0], int64(at), 10)
		scratch = append(scratch, ' ')
		scratch = append(scratch, name...)
		scratch = append(scratch, '\n')
		buf.Write(scratch)
	})

	const prefix = bgp.Prefix("origin/8")
	origin := bgp.RouterID(24)

	// Warm-up (traced too: construction-time scheduling is part of the
	// behaviour under test).
	n.Router(origin).Originate(prefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	n.ResetDamping()

	// Fault phase: impairment plus scripted session resets, then two pulses.
	imp := faults.NewImpairments(cfg.Seed)
	if err := imp.SetDefault(faults.Profile{Loss: 0.01, MaxJitter: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	n.SetImpairment(imp)
	plan := faults.NewPlan(
		faults.ResetSession(30*time.Second, 0, 1),
		faults.ResetSession(90*time.Second, 5, 6),
		faults.ResetSession(150*time.Second, 12, 13),
	)
	if err := plan.Apply(n, k.Now(), imp); err != nil {
		t.Fatal(err)
	}
	const interval = 60 * time.Second
	for pulse := 0; pulse < 2; pulse++ {
		n.Router(origin).StopOriginating(prefix)
		if err := k.RunUntil(k.Now() + interval); err != nil {
			t.Fatal(err)
		}
		n.Router(origin).Originate(prefix)
		if err := k.RunUntil(k.Now() + interval); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "end %d executed %d delivered %d dropped %d\n",
		int64(k.Now()), k.Executed(), n.Delivered(), n.Dropped())
	return buf.Bytes()
}

// TestGoldenTraceMesh5Faulty asserts the engine reproduces, byte for byte,
// the kernel event trace recorded before the allocation-free core rewrite.
// Run with -update to re-record after an intentional behaviour change.
func TestGoldenTraceMesh5Faulty(t *testing.T) {
	got := mesh5FaultyTrace(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenTracePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTracePath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenTracePath, len(got))
		return
	}
	want, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to record): %v", err)
	}
	if !bytes.Equal(got, want) {
		line := 1
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			if got[i] == '\n' {
				line++
			}
			i++
		}
		t.Fatalf("trace diverges from %s at byte %d (line %d): got %d bytes, want %d bytes",
			goldenTracePath, i, line, len(got), len(want))
	}
}

// TestGoldenTraceRepeatable guards the golden test itself: two in-process
// runs of the reference scenario must agree, so a golden failure always
// means a behaviour change, never nondeterminism in the harness.
func TestGoldenTraceRepeatable(t *testing.T) {
	a := mesh5FaultyTrace(t)
	b := mesh5FaultyTrace(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two identical runs produced different traces")
	}
}
